#include "support/ascii_plot.hpp"

#include <iomanip>

namespace ppa::plot {

namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;
  [[nodiscard]] double span() const { return hi - lo; }
};

Range data_range(const std::vector<Series>& series,
                 double (*pick)(const std::pair<double, double>&)) {
  Range r{1e300, -1e300};
  bool any = false;
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      r.lo = std::min(r.lo, pick(p));
      r.hi = std::max(r.hi, pick(p));
      any = true;
    }
  }
  if (!any) return {0.0, 1.0};
  if (r.span() <= 0.0) {
    r.lo -= 0.5;
    r.hi += 0.5;
  }
  return r;
}

std::string format_tick(double v) {
  std::ostringstream os;
  if (std::abs(v) >= 100.0 || v == std::floor(v)) {
    os << std::fixed << std::setprecision(0) << v;
  } else {
    os << std::fixed << std::setprecision(1) << v;
  }
  return os.str();
}

}  // namespace

std::string render(const Axes& axes, const std::vector<Series>& series) {
  const int w = std::max(axes.width, 16);
  const int h = std::max(axes.height, 8);
  const Range xr = data_range(series, [](const std::pair<double, double>& p) {
    return p.first;
  });
  const Range yr = data_range(series, [](const std::pair<double, double>& p) {
    return p.second;
  });

  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const double fx = (x - xr.lo) / xr.span();
      const double fy = (y - yr.lo) / yr.span();
      if (fx < 0.0 || fx > 1.0 || fy < 0.0 || fy > 1.0) continue;
      const int cx = std::min(w - 1, static_cast<int>(std::lround(fx * (w - 1))));
      const int cy = std::min(h - 1, static_cast<int>(std::lround(fy * (h - 1))));
      // Row 0 of the canvas is the top of the plot.
      canvas[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)] =
          s.glyph;
    }
  }

  std::ostringstream out;
  if (!axes.title.empty()) out << "  " << axes.title << "\n";
  const std::string ytop = format_tick(yr.hi);
  const std::string ybot = format_tick(yr.lo);
  const std::size_t margin = std::max(ytop.size(), ybot.size()) + 1;

  for (int row = 0; row < h; ++row) {
    std::string label;
    if (row == 0) label = ytop;
    if (row == h - 1) label = ybot;
    out << std::setw(static_cast<int>(margin)) << label << " |"
        << canvas[static_cast<std::size_t>(row)] << "\n";
  }
  out << std::string(margin + 1, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
      << "\n";
  const std::string xlo = format_tick(xr.lo);
  const std::string xhi = format_tick(xr.hi);
  out << std::string(margin + 2, ' ') << xlo
      << std::string(static_cast<std::size_t>(
                         std::max(1, w - static_cast<int>(xlo.size()) -
                                         static_cast<int>(xhi.size()))),
                     ' ')
      << xhi << "\n";
  if (!axes.xlabel.empty()) {
    out << std::string(margin + 2, ' ') << "x: " << axes.xlabel;
    if (!axes.ylabel.empty()) out << "   y: " << axes.ylabel;
    out << "\n";
  }
  for (const auto& s : series) {
    if (s.name.empty()) continue;
    out << std::string(margin + 2, ' ') << s.glyph << " = " << s.name << "\n";
  }
  return out.str();
}

std::string render_speedup(const std::string& title,
                           const std::vector<Series>& series, double max_p,
                           double max_s) {
  Axes axes;
  axes.title = title;
  axes.xlabel = "processors";
  axes.ylabel = "speedup";
  std::vector<Series> all = series;
  Series perfect{"perfect speedup", '.', {}};
  const int steps = 32;
  for (int i = 0; i <= steps; ++i) {
    const double p = 1.0 + (max_p - 1.0) * i / steps;
    if (p <= max_s) perfect.points.emplace_back(p, p);
  }
  all.push_back(std::move(perfect));
  // Anchor the axes so different figures are comparable.
  Series anchor{"", ' ', {{0.0, 0.0}, {max_p, max_s}}};
  all.push_back(anchor);
  auto text = render(axes, all);
  return text;
}

}  // namespace ppa::plot
