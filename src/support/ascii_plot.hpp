// ppa/support/ascii_plot.hpp
//
// Terminal x-y plotting used by the per-figure benchmark binaries to render
// paper-style speedup curves (multiple series, one glyph per series, with a
// legend). Deliberately dependency-free so bench output is plain text.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace ppa::plot {

/// One plotted curve: a name (for the legend), a glyph, and (x, y) points.
struct Series {
  std::string name;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;
};

struct Axes {
  std::string title;
  std::string xlabel;
  std::string ylabel;
  int width = 64;   ///< plot-area columns
  int height = 20;  ///< plot-area rows
};

std::string render(const Axes& axes, const std::vector<Series>& series);

/// Convenience: render a classic speedup figure (speedup vs processors with a
/// `perfect` diagonal), matching the layout of the paper's figures.
std::string render_speedup(const std::string& title,
                           const std::vector<Series>& series, double max_p,
                           double max_s);

}  // namespace ppa::plot
