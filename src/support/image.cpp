#include "support/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ppa::img {

namespace {

/// Compute the normalization range, falling back to data min/max.
void resolve_range(const Array2D<double>& field, double& lo, double& hi) {
  if (lo != hi) return;
  lo = 1e300;
  hi = -1e300;
  for (double v : field.flat()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo >= hi) {
    lo -= 0.5;
    hi += 0.5;
  }
}

double normalize(double v, double lo, double hi) {
  return std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
}

}  // namespace

Rgb colormap_jet(double t) {
  t = std::clamp(t, 0.0, 1.0);
  const auto ch = [](double x) {
    return static_cast<unsigned char>(std::lround(255.0 * std::clamp(x, 0.0, 1.0)));
  };
  return Rgb{ch(1.5 - std::abs(4.0 * t - 3.0)), ch(1.5 - std::abs(4.0 * t - 2.0)),
             ch(1.5 - std::abs(4.0 * t - 1.0))};
}

Rgb colormap_gray(double t) {
  const auto g =
      static_cast<unsigned char>(std::lround(255.0 * std::clamp(t, 0.0, 1.0)));
  return Rgb{g, g, g};
}

void write_ppm(const std::string& path, const Array2D<double>& field, double lo,
               double hi, Rgb (*cmap)(double)) {
  resolve_range(field, lo, hi);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  out << "P6\n" << field.cols() << ' ' << field.rows() << "\n255\n";
  for (std::size_t i = 0; i < field.rows(); ++i) {
    for (std::size_t j = 0; j < field.cols(); ++j) {
      const Rgb c = cmap(normalize(field(i, j), lo, hi));
      out.put(static_cast<char>(c.r));
      out.put(static_cast<char>(c.g));
      out.put(static_cast<char>(c.b));
    }
  }
}

void write_pgm(const std::string& path, const Array2D<double>& field, double lo,
               double hi) {
  resolve_range(field, lo, hi);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << field.cols() << ' ' << field.rows() << "\n255\n";
  for (std::size_t i = 0; i < field.rows(); ++i) {
    for (std::size_t j = 0; j < field.cols(); ++j) {
      const double t = normalize(field(i, j), lo, hi);
      out.put(static_cast<char>(std::lround(255.0 * t)));
    }
  }
}

std::string ascii_field(const Array2D<double>& field, int cols) {
  static const char* kRamp = " .:-=+*#%@";
  constexpr int kLevels = 10;
  if (field.empty()) return "(empty field)\n";
  double lo = 0.0, hi = 0.0;
  resolve_range(field, lo, hi);
  cols = std::max(8, cols);
  // Terminal cells are ~2x taller than wide; halve row resolution.
  const int rows =
      std::max(4, static_cast<int>(field.rows() * static_cast<std::size_t>(cols) /
                                   (2 * std::max<std::size_t>(1, field.cols()))));
  std::ostringstream out;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const auto i = static_cast<std::size_t>(
          (static_cast<double>(r) + 0.5) / rows * static_cast<double>(field.rows()));
      const auto j = static_cast<std::size_t>(
          (static_cast<double>(c) + 0.5) / cols * static_cast<double>(field.cols()));
      const double t = normalize(field(std::min(i, field.rows() - 1),
                                       std::min(j, field.cols() - 1)),
                                 lo, hi);
      const int level = std::min(kLevels - 1, static_cast<int>(t * kLevels));
      out << kRamp[level];
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace ppa::img
