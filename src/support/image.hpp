// ppa/support/image.hpp
//
// Minimal image output (binary PGM/PPM) plus colormaps, used to regenerate
// the paper's field-output figures (Fig 19/20: density and vorticity of a
// shock-interface interaction; Fig 21: azimuthal velocity of a swirling
// flow). Also provides a coarse ASCII rendering so results are visible in
// terminal logs.
#pragma once

#include <string>

#include "support/ndarray.hpp"

namespace ppa::img {

/// RGB triple, components in [0, 255].
struct Rgb {
  unsigned char r = 0, g = 0, b = 0;
};

/// Classic blue->cyan->yellow->red "jet"-style colormap; t in [0,1].
Rgb colormap_jet(double t);

/// Grayscale colormap; t in [0,1].
Rgb colormap_gray(double t);

/// Write `field` as a binary PPM (P6), normalizing values to [lo, hi].
/// If lo == hi, the range is taken from the data. Row 0 of the array is the
/// top row of the image.
void write_ppm(const std::string& path, const Array2D<double>& field,
               double lo = 0.0, double hi = 0.0,
               Rgb (*cmap)(double) = &colormap_jet);

/// Write `field` as a binary PGM (P5) grayscale image.
void write_pgm(const std::string& path, const Array2D<double>& field,
               double lo = 0.0, double hi = 0.0);

/// Coarse ASCII-art rendering (for terminal inspection); `cols` output
/// columns, aspect-corrected rows.
std::string ascii_field(const Array2D<double>& field, int cols = 72);

}  // namespace ppa::img
