// ppa/support/ndarray.hpp
//
// Owning, row-major 1/2/3-dimensional arrays used throughout the archetype
// framework for local grid sections, whole-grid (version-1) algorithms, and
// image buffers.
//
// Design notes:
//  * Row-major storage; the rightmost index is contiguous.
//  * operator() is bounds-checked in debug builds (assert) and unchecked in
//    release builds; at() is always checked.
//  * row(i) / row_span() expose contiguous rows as std::span so that row
//    operations (one of the mesh-spectral archetype's primitive operation
//    classes) can be written against spans.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace ppa {

/// Owning two-dimensional row-major array.
template <typename T>
class Array2D {
 public:
  Array2D() = default;

  Array2D(std::size_t rows, std::size_t cols, const T& init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) noexcept {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const noexcept {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Always-bounds-checked access.
  T& at(std::size_t i, std::size_t j) {
    if (i >= rows_ || j >= cols_) throw std::out_of_range("Array2D::at");
    return data_[i * cols_ + j];
  }
  const T& at(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_) throw std::out_of_range("Array2D::at");
    return data_[i * cols_ + j];
  }

  /// Contiguous view of row i.
  [[nodiscard]] std::span<T> row(std::size_t i) noexcept {
    assert(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t i) const noexcept {
    assert(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<T> flat() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> flat() const noexcept {
    return {data_.data(), data_.size()};
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Array2D& a, const Array2D& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Owning three-dimensional row-major array (index order: i, j, k with k
/// contiguous).
template <typename T>
class Array3D {
 public:
  Array3D() = default;

  Array3D(std::size_t nx, std::size_t ny, std::size_t nz, const T& init = T{})
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, init) {}

  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }
  [[nodiscard]] std::size_t nz() const noexcept { return nz_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j, std::size_t k) noexcept {
    assert(i < nx_ && j < ny_ && k < nz_);
    return data_[(i * ny_ + j) * nz_ + k];
  }
  const T& operator()(std::size_t i, std::size_t j, std::size_t k) const noexcept {
    assert(i < nx_ && j < ny_ && k < nz_);
    return data_[(i * ny_ + j) * nz_ + k];
  }

  T& at(std::size_t i, std::size_t j, std::size_t k) {
    if (i >= nx_ || j >= ny_ || k >= nz_) throw std::out_of_range("Array3D::at");
    return data_[(i * ny_ + j) * nz_ + k];
  }
  const T& at(std::size_t i, std::size_t j, std::size_t k) const {
    if (i >= nx_ || j >= ny_ || k >= nz_) throw std::out_of_range("Array3D::at");
    return data_[(i * ny_ + j) * nz_ + k];
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<T> flat() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> flat() const noexcept {
    return {data_.data(), data_.size()};
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Array3D& a, const Array3D& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.nz_ == b.nz_ && a.data_ == b.data_;
  }

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::size_t nz_ = 0;
  std::vector<T> data_;
};

/// Transposed copy (rows become columns). Useful when rendering fields
/// whose first index is the horizontal axis.
template <typename T>
[[nodiscard]] Array2D<T> transpose(const Array2D<T>& a) {
  Array2D<T> out(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out(j, i) = a(i, j);
  }
  return out;
}

}  // namespace ppa
