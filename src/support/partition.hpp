// ppa/support/partition.hpp
//
// Block-partition index arithmetic shared by both archetypes: the one-deep
// divide-and-conquer archetype block-distributes 1-D problem data among
// processes, and the mesh-spectral archetype block-distributes grid axes
// across a Cartesian process grid.
#pragma once

#include <cassert>
#include <cstddef>

namespace ppa {

/// Half-open index range [lo, hi).
struct Range {
  std::size_t lo = 0;
  std::size_t hi = 0;
  [[nodiscard]] std::size_t size() const noexcept { return hi - lo; }
  [[nodiscard]] bool contains(std::size_t i) const noexcept {
    return i >= lo && i < hi;
  }
  friend bool operator==(const Range&, const Range&) = default;
};

/// The `part`-th of `parts` near-equal contiguous blocks of [0, n).
/// The first (n % parts) blocks get one extra element, matching the standard
/// MPI block distribution. Valid for any n (including n < parts, where the
/// trailing blocks are empty).
inline Range block_range(std::size_t n, std::size_t parts, std::size_t part) noexcept {
  assert(parts > 0 && part < parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  const std::size_t lo = part * base + (part < extra ? part : extra);
  const std::size_t size = base + (part < extra ? 1 : 0);
  return {lo, lo + size};
}

/// Inverse map: which block owns global index i under block_range(n, parts, .)?
inline std::size_t block_owner(std::size_t n, std::size_t parts, std::size_t i) noexcept {
  assert(i < n);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  const std::size_t cutover = extra * (base + 1);  // first index owned by a small block
  if (i < cutover) return i / (base + 1);
  assert(base > 0);
  return extra + (i - cutover) / base;
}

}  // namespace ppa
