// ppa/support/rng.hpp
//
// Deterministic, seedable pseudo-random number generation (xoshiro256**,
// seeded via splitmix64). All workload generators in tests and benches use
// this so that runs are reproducible across platforms and standard-library
// implementations (std::mt19937's distributions are not cross-stdlib stable;
// this generator plus our own distribution mappings are).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace ppa {

/// splitmix64: used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, reproducible PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses rejection sampling over the top
  /// bits; the retry probability is negligible for the bounds we use.
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Power-of-two fast path and general path via modulo with rejection of
    // the biased tail.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t x = (*this)();
    while (x >= limit) x = (*this)();
    return x % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_u64(range));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (polar is fine; marsaglia avoided for
  /// determinism simplicity).
  double normal() noexcept {
    // Box–Muller; caches are intentionally not used so call counts are
    // position-independent (helps reproducibility when interleaving).
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    constexpr double two_pi = 6.28318530717958647692;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Convenience: n uniformly random ints in [lo, hi], deterministic in seed.
inline std::vector<int> random_ints(std::size_t n, int lo, int hi,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> out(n);
  for (auto& v : out) v = static_cast<int>(rng.uniform_int(lo, hi));
  return out;
}

/// Convenience: n uniform doubles in [lo, hi), deterministic in seed.
inline std::vector<double> random_doubles(std::size_t n, double lo, double hi,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(lo, hi);
  return out;
}

}  // namespace ppa
