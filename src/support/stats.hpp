// ppa/support/stats.hpp
//
// Summary statistics and timing helpers used by the benchmark harness and by
// tests that check statistical properties of workload generators.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace ppa {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double median = 0.0;
};

inline Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(n);
  if (n > 1) {
    double ss = 0.0;
    for (double x : sorted) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(n - 1));
  }
  return s;
}

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Time a callable, returning elapsed seconds.
template <typename F>
double time_seconds(F&& f) {
  Timer t;
  f();
  return t.seconds();
}

/// Run a callable `reps` times and return the minimum elapsed seconds —
/// the standard noise-robust estimator for short benchmarks.
template <typename F>
double time_best_of(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, time_seconds(f));
  return best;
}

}  // namespace ppa
