// Tests for the sequential algorithm substrate: sorting + splitters,
// skyline, convex hull, closest pair, and FFT — each validated against an
// independent oracle and property-tested on randomized inputs (fixed seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numeric>
#include <string>
#include <vector>

#include "algorithms/closest_pair.hpp"
#include "algorithms/fft.hpp"
#include "algorithms/hull.hpp"
#include "algorithms/skyline.hpp"
#include "algorithms/sorting.hpp"
#include "support/rng.hpp"

namespace {

using namespace ppa;
using namespace ppa::algo;

// ---------------------------------------------------------------- sorting --

TEST(Sorting, InsertionSortSmall) {
  std::vector<int> xs{5, 2, 8, 1, 9, 2};
  insertion_sort(std::span<int>(xs));
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
}

TEST(Sorting, MergeTwoInterleaves) {
  const std::vector<int> a{1, 3, 5}, b{2, 4, 6};
  std::vector<int> out;
  merge_two(std::span<const int>(a), std::span<const int>(b), out);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(Sorting, MergeTwoWithEmpties) {
  const std::vector<int> a{1, 2}, empty;
  std::vector<int> out;
  merge_two(std::span<const int>(a), std::span<const int>(empty), out);
  EXPECT_EQ(out, a);
  out.clear();
  merge_two(std::span<const int>(empty), std::span<const int>(a), out);
  EXPECT_EQ(out, a);
}

class SortProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SortProperty, MergeSortMatchesStdSort) {
  auto xs = random_ints(997, -10000, 10000, GetParam());
  auto expected = xs;
  std::sort(expected.begin(), expected.end());
  merge_sort(xs);
  EXPECT_EQ(xs, expected);
}

TEST_P(SortProperty, QuickSortMatchesStdSort) {
  auto xs = random_ints(1024, -100, 100, GetParam());  // many duplicates
  auto expected = xs;
  std::sort(expected.begin(), expected.end());
  quick_sort(std::span<int>(xs));
  EXPECT_EQ(xs, expected);
}

TEST_P(SortProperty, KwayMergeMatchesSortedConcat) {
  Rng rng(GetParam());
  std::vector<std::vector<int>> runs(5);
  std::vector<int> all;
  for (auto& run : runs) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 50));
    run = random_ints(n, -100, 100, rng());
    std::sort(run.begin(), run.end());
    all.insert(all.end(), run.begin(), run.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(kway_merge(runs), all);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortProperty, testing::Values(1u, 2u, 3u, 42u, 99u),
                         [](const testing::TestParamInfo<std::uint64_t>& info) {
                           std::string name = "seed";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(Sorting, SortsAlreadySortedAndReversed) {
  std::vector<int> up(300), down(300);
  std::iota(up.begin(), up.end(), 0);
  std::iota(down.rbegin(), down.rend(), 0);
  auto a = up;
  merge_sort(a);
  EXPECT_EQ(a, up);
  quick_sort(std::span<int>(down));
  EXPECT_EQ(down, up);
}

TEST(Sorting, EmptyAndSingleton) {
  std::vector<int> empty, one{7};
  merge_sort(empty);
  merge_sort(one);
  quick_sort(std::span<int>(empty));
  quick_sort(std::span<int>(one));
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one, (std::vector<int>{7}));
}

TEST(Sorting, RegularSampleQuantiles) {
  std::vector<int> run(100);
  std::iota(run.begin(), run.end(), 0);
  const auto s = regular_sample(std::span<const int>(run), 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 25);
  EXPECT_EQ(s[1], 50);
  EXPECT_EQ(s[2], 75);
  EXPECT_TRUE(regular_sample(std::span<const int>(run), 0).empty());
  const std::vector<int> empty;
  EXPECT_TRUE(regular_sample(std::span<const int>(empty), 4).empty());
}

TEST(Sorting, ChooseSplittersAreOrderedQuantiles) {
  auto samples = random_ints(200, 0, 1000, 5);
  const auto sp = choose_splitters(samples, 4);
  ASSERT_EQ(sp.size(), 3u);
  EXPECT_TRUE(std::is_sorted(sp.begin(), sp.end()));
}

TEST(Sorting, SplitBySplittersPartitionsCorrectly) {
  std::vector<int> run(50);
  std::iota(run.begin(), run.end(), 0);
  const std::vector<int> splitters{10, 30, 40};
  const auto parts = split_by_splitters(run, splitters, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].size(), 10u);  // 0..9
  EXPECT_EQ(parts[1].size(), 20u);  // 10..29
  EXPECT_EQ(parts[2].size(), 10u);  // 30..39
  EXPECT_EQ(parts[3].size(), 10u);  // 40..49
  // Boundary membership: a value equal to a splitter goes right.
  EXPECT_EQ(parts[1].front(), 10);
  EXPECT_EQ(parts[3].front(), 40);
}

TEST(Sorting, SplitBySplittersPreservesAllElements) {
  auto run = random_ints(333, -50, 50, 9);
  std::sort(run.begin(), run.end());
  const auto splitters = choose_splitters(run, 5);
  auto parts = split_by_splitters(run, splitters, 5);
  std::vector<int> rejoined;
  for (const auto& p : parts) {
    EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
    rejoined.insert(rejoined.end(), p.begin(), p.end());
  }
  EXPECT_EQ(rejoined, run);
}

// ---------------------------------------------------------------- skyline --

TEST(Skyline, SingleBuilding) {
  const auto s = skyline_of({2.0, 5.0, 3.0});
  EXPECT_EQ(s, (Skyline{{2.0, 3.0}, {5.0, 0.0}}));
  EXPECT_TRUE(skyline_is_canonical(s));
}

TEST(Skyline, DegenerateBuildingIsEmpty) {
  EXPECT_TRUE(skyline_of({5.0, 5.0, 3.0}).empty());
  EXPECT_TRUE(skyline_of({2.0, 5.0, 0.0}).empty());
}

TEST(Skyline, MergeDisjoint) {
  const auto a = skyline_of({0.0, 1.0, 2.0});
  const auto b = skyline_of({3.0, 4.0, 1.0});
  const auto m = merge_skylines(a, b);
  EXPECT_EQ(m, (Skyline{{0.0, 2.0}, {1.0, 0.0}, {3.0, 1.0}, {4.0, 0.0}}));
}

TEST(Skyline, MergeNestedTallerInside) {
  const auto a = skyline_of({0.0, 10.0, 2.0});
  const auto b = skyline_of({4.0, 6.0, 5.0});
  const auto m = merge_skylines(a, b);
  EXPECT_EQ(m, (Skyline{{0.0, 2.0}, {4.0, 5.0}, {6.0, 2.0}, {10.0, 0.0}}));
}

TEST(Skyline, MergeHiddenBuildingDisappears) {
  const auto a = skyline_of({0.0, 10.0, 5.0});
  const auto b = skyline_of({2.0, 4.0, 3.0});
  EXPECT_EQ(merge_skylines(a, b), a);
}

TEST(Skyline, ClassicNineBuildingExample) {
  // The standard textbook instance.
  const std::vector<Building> bs{{1, 5, 11}, {2, 7, 6},  {3, 9, 13},
                                 {12, 16, 7}, {14, 25, 3}, {19, 22, 18},
                                 {23, 29, 13}, {24, 28, 4}};
  const auto s = skyline_divide_and_conquer(bs);
  const Skyline expected{{1, 11}, {3, 13}, {9, 0},  {12, 7}, {16, 3},
                         {19, 18}, {22, 3}, {23, 13}, {29, 0}};
  EXPECT_EQ(s, expected);
  EXPECT_TRUE(skyline_is_canonical(s));
}

TEST(Skyline, HeightAtQueries) {
  const Skyline s{{1.0, 4.0}, {3.0, 2.0}, {6.0, 0.0}};
  EXPECT_DOUBLE_EQ(skyline_height_at(s, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(skyline_height_at(s, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(skyline_height_at(s, 2.9), 4.0);
  EXPECT_DOUBLE_EQ(skyline_height_at(s, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(skyline_height_at(s, 7.0), 0.0);
}

std::vector<Building> random_buildings(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Building> bs;
  bs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double l = rng.uniform(0.0, 100.0);
    bs.push_back({l, l + rng.uniform(0.5, 20.0), rng.uniform(1.0, 30.0)});
  }
  return bs;
}

class SkylineProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SkylineProperty, HeightMatchesMaxOverBuildingsEverywhere) {
  const auto bs = random_buildings(60, GetParam());
  const auto s = skyline_divide_and_conquer(bs);
  EXPECT_TRUE(skyline_is_canonical(s));
  Rng rng(GetParam() + 1000);
  for (int q = 0; q < 300; ++q) {
    const double x = rng.uniform(-5.0, 130.0);
    double expected = 0.0;
    for (const auto& b : bs) {
      if (b.left <= x && x < b.right) expected = std::max(expected, b.height);
    }
    EXPECT_NEAR(skyline_height_at(s, x), expected, 1e-12) << "at x=" << x;
  }
}

TEST_P(SkylineProperty, MergeIsCommutativeAndAssociative) {
  const auto a = skyline_divide_and_conquer(random_buildings(20, GetParam()));
  const auto b = skyline_divide_and_conquer(random_buildings(20, GetParam() + 7));
  const auto c = skyline_divide_and_conquer(random_buildings(20, GetParam() + 13));
  EXPECT_EQ(merge_skylines(a, b), merge_skylines(b, a));
  EXPECT_EQ(merge_skylines(merge_skylines(a, b), c),
            merge_skylines(a, merge_skylines(b, c)));
}

TEST_P(SkylineProperty, ClipAndConcatRecoverWhole) {
  const auto s = skyline_divide_and_conquer(random_buildings(40, GetParam()));
  const std::vector<double> cuts{-10.0, 20.0, 35.0, 50.0, 80.0, 150.0};
  std::vector<Skyline> strips;
  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    strips.push_back(clip_skyline(s, cuts[k], cuts[k + 1]));
    EXPECT_TRUE(skyline_is_canonical(strips.back()));
  }
  EXPECT_EQ(concat_skylines(strips), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkylineProperty, testing::Values(1u, 8u, 21u, 77u),
                         [](const testing::TestParamInfo<std::uint64_t>& info) {
                           std::string name = "seed";
                           name += std::to_string(info.param);
                           return name;
                         });

// ------------------------------------------------------------------- hull --

TEST(Hull, TriangleIsItsOwnHull) {
  const auto h = convex_hull({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(h.size(), 3u);
}

TEST(Hull, InteriorPointsExcluded) {
  const auto h = convex_hull({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}});
  EXPECT_EQ(h.size(), 4u);
  for (const auto& p : h) {
    EXPECT_TRUE((p.x == 0 || p.x == 4) && (p.y == 0 || p.y == 4));
  }
}

TEST(Hull, CollinearInputGivesSegment) {
  const auto h = convex_hull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.front(), (Point2{0, 0}));
  EXPECT_EQ(h.back(), (Point2{3, 3}));
}

TEST(Hull, SmallInputs) {
  EXPECT_TRUE(convex_hull({}).empty());
  EXPECT_EQ(convex_hull({{1, 2}}).size(), 1u);
  EXPECT_EQ(convex_hull({{1, 2}, {3, 4}}).size(), 2u);
  EXPECT_EQ(convex_hull({{1, 2}, {1, 2}}).size(), 1u);  // duplicates collapse
}

class HullProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(HullProperty, HullContainsAllPointsAndIsConvex) {
  Rng rng(GetParam());
  std::vector<Point2> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0)});
  }
  const auto h = convex_hull(pts);
  ASSERT_GE(h.size(), 3u);
  // Convexity: every consecutive triple turns left (strictly, since
  // collinear points are excluded).
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_GT(cross(h[i], h[(i + 1) % h.size()], h[(i + 2) % h.size()]), 0.0);
  }
  for (const auto& p : pts) {
    EXPECT_TRUE(point_in_hull(std::span<const Point2>(h), p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HullProperty, testing::Values(3u, 14u, 159u),
                         [](const testing::TestParamInfo<std::uint64_t>& info) {
                           std::string name = "seed";
                           name += std::to_string(info.param);
                           return name;
                         });

// ----------------------------------------------------------- closest pair --

TEST(ClosestPair, KnownInstance) {
  const std::vector<Point2> pts{{0, 0}, {10, 10}, {1, 0.5}, {5, 5}, {1.2, 0.6}};
  const auto r = closest_pair(pts);
  EXPECT_NEAR(r.distance, dist({1, 0.5}, {1.2, 0.6}), 1e-12);
}

TEST(ClosestPair, DuplicatePointsGiveZero) {
  const std::vector<Point2> pts{{1, 1}, {3, 2}, {1, 1}};
  EXPECT_DOUBLE_EQ(closest_pair(pts).distance, 0.0);
}

TEST(ClosestPair, TwoPoints) {
  const std::vector<Point2> pts{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(closest_pair(pts).distance, 5.0);
}

class ClosestPairProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ClosestPairProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  std::vector<Point2> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  EXPECT_NEAR(closest_pair(pts).distance, closest_pair_brute(pts).distance, 1e-12);
}

TEST_P(ClosestPairProperty, CrossPairFindsStraddlers) {
  Rng rng(GetParam() + 5);
  std::vector<Point2> left, right;
  for (int i = 0; i < 100; ++i) {
    left.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 100.0)});
    right.push_back({rng.uniform(10.0, 20.0), rng.uniform(0.0, 100.0)});
  }
  // Plant a straddling pair closer than anything else.
  left.push_back({9.9999, 50.0});
  right.push_back({10.0001, 50.0});
  const double upper = std::min(closest_pair(left).distance,
                                closest_pair(right).distance);
  const auto r = closest_cross_pair(left, right, 10.0, upper);
  EXPECT_NEAR(r.distance, 0.0002, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosestPairProperty, testing::Values(2u, 33u, 404u),
                         [](const testing::TestParamInfo<std::uint64_t>& info) {
                           std::string name = "seed";
                           name += std::to_string(info.param);
                           return name;
                         });

// -------------------------------------------------------------------- fft --

TEST(Fft, PowerOfTwoCheck) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
}

TEST(Fft, MatchesNaiveDft) {
  Rng rng(7);
  std::vector<Complex> xs(64);
  for (auto& x : xs) x = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const auto expected = dft_reference(xs);
  auto ys = xs;
  fft(std::span<Complex>(ys));
  for (std::size_t k = 0; k < xs.size(); ++k) {
    EXPECT_NEAR(std::abs(ys[k] - expected[k]), 0.0, 1e-9) << "bin " << k;
  }
}

TEST(Fft, RoundtripIdentity) {
  Rng rng(11);
  std::vector<Complex> xs(256);
  for (auto& x : xs) x = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  auto ys = xs;
  fft(std::span<Complex>(ys), false);
  fft(std::span<Complex>(ys), true);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    EXPECT_NEAR(std::abs(ys[k] - xs[k]), 0.0, 1e-10);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(13);
  std::vector<Complex> xs(128);
  for (auto& x : xs) x = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  double time_energy = 0.0;
  for (const auto& x : xs) time_energy += std::norm(x);
  auto ys = xs;
  fft(std::span<Complex>(ys));
  double freq_energy = 0.0;
  for (const auto& y : ys) freq_energy += std::norm(y);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(xs.size()), 1e-6);
}

TEST(Fft, PureToneHitsSingleBin) {
  constexpr std::size_t kN = 64;
  constexpr std::size_t kBin = 5;
  std::vector<Complex> xs(kN);
  for (std::size_t t = 0; t < kN; ++t) {
    const double angle = 2.0 * 3.14159265358979323846 * static_cast<double>(kBin) *
                         static_cast<double>(t) / static_cast<double>(kN);
    xs[t] = {std::cos(angle), std::sin(angle)};
  }
  fft(std::span<Complex>(xs));
  for (std::size_t k = 0; k < kN; ++k) {
    if (k == kBin) {
      EXPECT_NEAR(std::abs(xs[k]), static_cast<double>(kN), 1e-8);
    } else {
      EXPECT_NEAR(std::abs(xs[k]), 0.0, 1e-8);
    }
  }
}

TEST(Fft, TrivialSizes) {
  std::vector<Complex> one{{3.0, -1.0}};
  fft(std::span<Complex>(one));
  EXPECT_EQ(one[0], Complex(3.0, -1.0));
  std::vector<Complex> two{{1.0, 0.0}, {2.0, 0.0}};
  fft(std::span<Complex>(two));
  EXPECT_NEAR(std::abs(two[0] - Complex(3.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(two[1] - Complex(-1.0, 0.0)), 0.0, 1e-12);
}

TEST(Fft, TwoDimensionalRoundtrip) {
  Rng rng(17);
  Array2D<Complex> a(16, 32);
  for (auto& v : a.flat()) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const auto original = a;
  fft_2d(a, false);
  // Inverse must be applied in reverse operation order too (cols then rows
  // commute here since the transform is separable, but keep it symmetric).
  fft_cols(a, true);
  fft_rows(a, true);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(std::abs(a(i, j) - original(i, j)), 0.0, 1e-10);
    }
  }
}

TEST(Fft, TwoDimensionalImpulseIsFlat) {
  Array2D<Complex> a(8, 8, Complex(0.0, 0.0));
  a(0, 0) = Complex(1.0, 0.0);
  fft_2d(a);
  for (const auto& v : a.flat()) {
    EXPECT_NEAR(std::abs(v - Complex(1.0, 0.0)), 0.0, 1e-12);
  }
}

}  // namespace
