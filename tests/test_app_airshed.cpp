// Tests for the airshed smog model (paper section 7.4): chemistry
// invariants (nitrogen conservation, photostationary tendency), transport
// conservation on a periodic domain, positivity, diurnal photolysis, ozone
// formation downwind of emissions, and process-count invariance.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>

#include "apps/airshed/airshed.hpp"

namespace {

using namespace ppa;
using app::AirshedConfig;
using app::AirshedSim;
using app::Chem;

AirshedConfig small_config() {
  AirshedConfig cfg;
  cfg.nx = 32;
  cfg.ny = 24;
  return cfg;
}

TEST(AirshedApp, PhotolysisIsDiurnal) {
  const auto cfg = small_config();
  const auto pgrid = mpl::CartGrid2D::near_square(1);
  mpl::spmd_run(1, [&](mpl::Process& p) {
    AirshedSim sim(p, pgrid, cfg);
    EXPECT_EQ(sim.photolysis_rate(3.0), 0.0);    // night
    EXPECT_EQ(sim.photolysis_rate(22.0), 0.0);   // night
    EXPECT_NEAR(sim.photolysis_rate(12.0), cfg.rate_j_max, 1e-12);  // noon
    EXPECT_GT(sim.photolysis_rate(9.0), 0.0);
    EXPECT_LT(sim.photolysis_rate(9.0), cfg.rate_j_max);
  });
}

class AirshedP : public testing::TestWithParam<int> {};

TEST_P(AirshedP, ChemistryConservesTotalNitrogen) {
  const int p = GetParam();
  const auto cfg = small_config();
  const auto pgrid = mpl::CartGrid2D::near_square(p);
  mpl::spmd_run(p, [&](mpl::Process& proc) {
    AirshedSim sim(proc, pgrid, cfg);
    sim.disable_emissions();
    const double n0 = sim.total_nitrogen();
    for (int s = 0; s < 50; ++s) sim.chemistry_step();
    EXPECT_NEAR(sim.total_nitrogen(), n0, 1e-12 * std::max(1.0, n0));
  });
}

TEST_P(AirshedP, PeriodicTransportConservesMass) {
  const int p = GetParam();
  auto cfg = small_config();
  cfg.periodic = true;
  const auto pgrid = mpl::CartGrid2D::near_square(p);
  mpl::spmd_run(p, [&](mpl::Process& proc) {
    AirshedSim sim(proc, pgrid, cfg);
    sim.disable_emissions();
    const double no0 = sim.total(0);
    const double no20 = sim.total(1);
    const double o30 = sim.total(2);
    for (int s = 0; s < 40; ++s) sim.transport_step();
    EXPECT_NEAR(sim.total(0), no0, 1e-10 * std::max(1.0, no0));
    EXPECT_NEAR(sim.total(1), no20, 1e-10 * std::max(1.0, no20));
    EXPECT_NEAR(sim.total(2), o30, 1e-10 * std::max(1.0, o30));
  });
}

TEST_P(AirshedP, ConcentrationsStayNonNegative) {
  const int p = GetParam();
  const auto cfg = small_config();
  const auto pgrid = mpl::CartGrid2D::near_square(p);
  mpl::spmd_run(p, [&](mpl::Process& proc) {
    AirshedSim sim(proc, pgrid, cfg);
    sim.run(80);
    EXPECT_GE(sim.min_concentration(), 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, AirshedP, testing::Values(1, 2, 4, 6),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(AirshedApp, ProcessCountInvariantBitwise) {
  // No dt reductions (fixed dt): decompositions must agree bitwise.
  const auto cfg = small_config();
  const auto run_with = [&](int p) {
    const auto pgrid = mpl::CartGrid2D::near_square(p);
    Array2D<double> o3;
    mpl::spmd_run(p, [&](mpl::Process& proc) {
      AirshedSim sim(proc, pgrid, cfg);
      sim.run(50);
      auto field = sim.gather_species(2, 0);
      if (proc.rank() == 0) o3 = std::move(field);
    });
    return o3;
  };
  const auto a = run_with(1);
  const auto b = run_with(4);
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(AirshedApp, ChemistryApproachesPhotostationaryState) {
  // Under constant daylight, NO/NO2/O3 tend to the photostationary relation
  // j*[NO2] = k*[NO]*[O3].
  auto cfg = small_config();
  const auto pgrid = mpl::CartGrid2D::near_square(1);
  mpl::spmd_run(1, [&](mpl::Process& p) {
    AirshedSim sim(p, pgrid, cfg);
    sim.disable_emissions();
    sim.set_field([](std::size_t, std::size_t) {
      return Chem{0.08, 0.02, 0.01};
    });
    for (int s = 0; s < 4000; ++s) sim.chemistry_step();
    const double j = sim.photolysis_rate(sim.hour());
    // Sample the steady state via the gathered fields.
    const auto no = sim.gather_species(0, 0);
    const auto no2 = sim.gather_species(1, 0);
    const auto o3 = sim.gather_species(2, 0);
    const double lhs = j * no2(5, 5);
    const double rhs = cfg.rate_k * no(5, 5) * o3(5, 5);
    EXPECT_NEAR(lhs, rhs, 0.05 * std::max(lhs, rhs));
  });
}

TEST(AirshedApp, OzoneFormsDownwindOfCity) {
  // The classic smog signature: after daytime simulation, peak O3 exceeds
  // the background and the O3 plume center of mass sits downwind (+x) of
  // the NO emission peak.
  auto cfg = small_config();
  cfg.nx = 48;
  cfg.ny = 32;
  const auto pgrid = mpl::CartGrid2D::near_square(2);
  mpl::spmd_run(2, [&](mpl::Process& proc) {
    AirshedSim sim(proc, pgrid, cfg);
    sim.run(400);  // 4 simulated hours from 8am
    EXPECT_GT(sim.max_o3(), cfg.background_o3 * 1.05);
    const auto no = sim.gather_species(0, 0);
    const auto o3 = sim.gather_species(2, 0);
    if (proc.rank() != 0) return;
    const auto center_x = [&](const Array2D<double>& f, double baseline) {
      double m = 0.0, mx = 0.0;
      for (std::size_t i = 0; i < f.rows(); ++i) {
        for (std::size_t j = 0; j < f.cols(); ++j) {
          const double w = std::max(0.0, f(i, j) - baseline);
          m += w;
          mx += w * static_cast<double>(i);
        }
      }
      return mx / std::max(m, 1e-30);
    };
    EXPECT_GT(center_x(o3, cfg.background_o3), center_x(no, 0.0));
  });
}

// ----------------------------------------------------------- block driver --

AirshedConfig block_test_config() {
  AirshedConfig cfg;
  cfg.nx = 48;
  cfg.ny = 32;
  return cfg;
}

/// Gather all four species from either sim type on rank 0.
template <typename Sim>
std::array<Array2D<double>, 4> gather_all(Sim& sim) {
  return {sim.gather_species(0), sim.gather_species(1), sim.gather_species(2),
          sim.gather_species(3)};
}

TEST(AirshedBlocks, OneBlockPerRankMatchesSingleGridBitwise) {
  const auto cfg = block_test_config();
  constexpr int kSteps = 20;
  for (const int p : {1, 2, 4}) {
    const auto pgrid = mpl::CartGrid2D::near_square(p);
    std::array<Array2D<double>, 4> grid_out, block_out;
    mpl::spmd_run(p, [&](mpl::Process& proc) {
      AirshedSim sim(proc, pgrid, cfg);
      sim.run(kSteps);
      auto out = gather_all(sim);
      if (proc.rank() == 0) grid_out = std::move(out);
    });
    const auto layout = app::make_airshed_block_layout(cfg, p);
    const auto owner =
        mesh::distribute_blocks_contiguous(layout.nblocks(), p);
    mpl::spmd_run(p, [&](mpl::Process& proc) {
      app::AirshedBlockSim sim(proc, layout, owner, cfg);
      sim.run(kSteps);
      auto out = gather_all(sim);
      if (proc.rank() == 0) block_out = std::move(out);
    });
    for (int s = 0; s < 4; ++s) {
      const auto& a = grid_out[static_cast<std::size_t>(s)];
      const auto& b = block_out[static_cast<std::size_t>(s)];
      ASSERT_EQ(a.rows(), b.rows());
      for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
          ASSERT_EQ(a(i, j), b(i, j)) << "p=" << p << " species " << s
                                      << " at (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(AirshedBlocks, OversubscribedDistributionsMatchReferenceBitwise) {
  const auto cfg = block_test_config();
  constexpr int kSteps = 15;
  std::array<Array2D<double>, 4> reference;
  {
    const mpl::CartGrid2D pgrid(1, 1);
    mpl::spmd_run(1, [&](mpl::Process& proc) {
      AirshedSim sim(proc, pgrid, cfg);
      sim.run(kSteps);
      reference = gather_all(sim);
    });
  }
  for (const int np : {2, 4}) {
    for (const bool batched : {true, false}) {
      app::AirshedBlockConfig config;
      config.nbx = 4;
      config.nby = 2;
      config.owner = mesh::distribute_blocks_round_robin(8, np);
      config.batched = batched;
      const auto layout = app::make_airshed_block_layout(cfg, np, config);
      std::array<Array2D<double>, 4> block_out;
      mpl::spmd_run(np, [&](mpl::Process& proc) {
        app::AirshedBlockSim sim(proc, layout, config.owner, cfg,
                                 config.batched);
        sim.run(kSteps);
        auto out = gather_all(sim);
        if (proc.rank() == 0) block_out = std::move(out);
      });
      for (int s = 0; s < 4; ++s) {
        const auto& a = reference[static_cast<std::size_t>(s)];
        const auto& b = block_out[static_cast<std::size_t>(s)];
        for (std::size_t i = 0; i < a.rows(); ++i) {
          for (std::size_t j = 0; j < a.cols(); ++j) {
            ASSERT_EQ(a(i, j), b(i, j))
                << "np=" << np << " batched=" << batched << " species " << s
                << " at (" << i << "," << j << ")";
          }
        }
      }
    }
  }
}

}  // namespace
