// Tests for the compressible-flow code (paper section 7.1): conservation on
// periodic domains, uniform-state preservation, process-count invariance
// (bitwise), positivity, shock propagation, and Rankine-Hugoniot setup.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <string>

#include "apps/cfd/euler2d.hpp"

namespace {

using namespace ppa;
using app::CfdConfig;
using app::CfdSim;
using app::EulerState;

CfdConfig small_config() {
  CfdConfig cfg;
  cfg.nx = 48;
  cfg.ny = 16;
  cfg.lx = 3.0;
  cfg.ly = 1.0;
  return cfg;
}

TEST(CfdApp, RankineHugoniotPostShockState) {
  // Sanity of the shock relations at Mach 1.5 into (rho=1, p=1, gamma=1.4).
  const auto w = app::post_shock_state(1.5, 1.0, 1.0, 1.4);
  EXPECT_NEAR(w.p, 2.458333333, 1e-6);       // 1 + 2*1.4/2.4*(1.25)
  EXPECT_NEAR(w.rho, 1.862068966, 1e-6);     // 2.4*2.25/(0.4*2.25+2)
  EXPECT_GT(w.u, 0.0);
  EXPECT_DOUBLE_EQ(w.v, 0.0);
  // Mach 1 shock is no shock at all.
  const auto w1 = app::post_shock_state(1.0, 1.0, 1.0, 1.4);
  EXPECT_NEAR(w1.p, 1.0, 1e-12);
  EXPECT_NEAR(w1.rho, 1.0, 1e-12);
  EXPECT_NEAR(w1.u, 0.0, 1e-12);
}

TEST(CfdApp, PrimitiveConservedRoundtrip) {
  const app::EulerPrim w{1.7, 0.3, -0.2, 2.5};
  const auto s = app::to_conserved(w, 1.4);
  const auto back = app::to_primitive(s, 1.4);
  EXPECT_NEAR(back.rho, w.rho, 1e-14);
  EXPECT_NEAR(back.u, w.u, 1e-14);
  EXPECT_NEAR(back.v, w.v, 1e-14);
  EXPECT_NEAR(back.p, w.p, 1e-14);
}

TEST(CfdApp, UniformStateIsSteady) {
  auto cfg = small_config();
  cfg.periodic_x = true;
  const auto pgrid = mpl::CartGrid2D::near_square(4);
  mpl::spmd_run(4, [&](mpl::Process& p) {
    CfdSim sim(p, pgrid, cfg);
    const EulerState s0 = app::to_conserved({1.3, 0.2, -0.1, 0.9}, cfg.gamma);
    sim.set_state([&](std::size_t, std::size_t) { return s0; });
    sim.run(20);
    mesh::for_interior(sim.state(), [&](std::ptrdiff_t i, std::ptrdiff_t j) {
      const EulerState& s = sim.state()(i, j);
      EXPECT_NEAR(s.rho, s0.rho, 1e-12);
      EXPECT_NEAR(s.mx, s0.mx, 1e-12);
      EXPECT_NEAR(s.my, s0.my, 1e-12);
      EXPECT_NEAR(s.E, s0.E, 1e-12);
    });
  });
}

class CfdP : public testing::TestWithParam<int> {};

TEST_P(CfdP, PeriodicBoxConservesMassMomentumEnergy) {
  const int p = GetParam();
  auto cfg = small_config();
  cfg.periodic_x = true;
  const auto pgrid = mpl::CartGrid2D::near_square(p);
  mpl::spmd_run(p, [&](mpl::Process& proc) {
    CfdSim sim(proc, pgrid, cfg);
    // Smooth periodic initial condition.
    sim.set_state([&](std::size_t gi, std::size_t gj) {
      const double x = (static_cast<double>(gi) + 0.5) * sim.dx();
      const double y = (static_cast<double>(gj) + 0.5) * sim.dy();
      const double rho =
          1.0 + 0.2 * std::sin(2.0 * std::numbers::pi * x / cfg.lx) *
                    std::cos(2.0 * std::numbers::pi * y / cfg.ly);
      return app::to_conserved({rho, 0.1, -0.05, 1.0}, cfg.gamma);
    });
    const double m0 = sim.total_mass();
    const double e0 = sim.total_energy();
    const double px0 = sim.total_momentum_x();
    sim.run(25);
    // Finite-volume flux differencing telescopes exactly on a periodic
    // domain; only rounding remains.
    EXPECT_NEAR(sim.total_mass(), m0, 1e-11 * std::abs(m0));
    EXPECT_NEAR(sim.total_energy(), e0, 1e-11 * std::abs(e0));
    EXPECT_NEAR(sim.total_momentum_x(), px0, 1e-9 * std::max(1.0, std::abs(px0)));
  });
}

TEST_P(CfdP, ShockScenarioStaysPhysical) {
  const int p = GetParam();
  auto cfg = small_config();
  const auto pgrid = mpl::CartGrid2D::near_square(p);
  mpl::spmd_run(p, [&](mpl::Process& proc) {
    CfdSim sim(proc, pgrid, cfg);
    sim.init_shock_interface();
    sim.run(40);
    EXPECT_GT(sim.min_density(), 0.0);
    EXPECT_GT(sim.min_pressure(), 0.0);
    EXPECT_TRUE(std::isfinite(sim.max_wave_speed()));
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CfdP, testing::Values(1, 2, 4, 6),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(CfdApp, ProcessCountInvariantBitwise) {
  // dt comes from an allreduced max (exact) and every cell update uses
  // identical arithmetic, so P=1 and P=4 runs agree bitwise.
  auto cfg = small_config();
  const auto rho1 = app::run_shock_interface(cfg, 30, 1);
  const auto rho4 = app::run_shock_interface(cfg, 30, 4);
  ASSERT_EQ(rho1.rows(), rho4.rows());
  for (std::size_t i = 0; i < rho1.rows(); ++i) {
    for (std::size_t j = 0; j < rho1.cols(); ++j) {
      EXPECT_EQ(rho1(i, j), rho4(i, j)) << "cell (" << i << "," << j << ")";
    }
  }
}

TEST(CfdApp, ShockAdvancesDownstream) {
  // After some steps the mean density right of the initial shock position
  // must rise (the shock compresses gas as it advances into the domain).
  auto cfg = small_config();
  const auto pgrid = mpl::CartGrid2D::near_square(2);
  mpl::spmd_run(2, [&](mpl::Process& proc) {
    CfdSim sim(proc, pgrid, cfg);
    sim.init_shock_interface();
    const auto before = sim.gather_density(0);
    sim.run(60);
    const auto after = sim.gather_density(0);
    if (proc.rank() != 0) return;
    const auto probe = static_cast<std::size_t>(
        (cfg.x_shock + 0.15) / cfg.lx * static_cast<double>(cfg.nx));
    double mean_before = 0.0, mean_after = 0.0;
    for (std::size_t j = 0; j < cfg.ny; ++j) {
      mean_before += before(probe, j);
      mean_after += after(probe, j);
    }
    EXPECT_GT(mean_after, mean_before * 1.05)
        << "shock did not reach probe column";
  });
}

TEST(CfdApp, VorticityGeneratedAtInterface) {
  // Baroclinic/shear vorticity appears once the shock has struck the
  // perturbed interface (the roll-up visible in the paper's Fig 20).
  auto cfg = small_config();
  cfg.nx = 64;
  cfg.ny = 32;
  const auto pgrid = mpl::CartGrid2D::near_square(2);
  mpl::spmd_run(2, [&](mpl::Process& proc) {
    CfdSim sim(proc, pgrid, cfg);
    sim.init_shock_interface();
    sim.run(150);
    const auto omega = sim.gather_vorticity(0);
    if (proc.rank() != 0) return;
    double max_abs = 0.0;
    for (double w : omega.flat()) max_abs = std::max(max_abs, std::abs(w));
    EXPECT_GT(max_abs, 0.05);
  });
}

// ----------------------------------------------------------- block driver --

CfdConfig block_test_config() {
  CfdConfig cfg;
  cfg.nx = 48;
  cfg.ny = 16;
  return cfg;
}

TEST(CfdBlocks, OneBlockPerRankMatchesSingleGridBitwise) {
  const auto cfg = block_test_config();
  constexpr int kSteps = 20;
  for (const int p : {1, 2, 4}) {
    const auto grid = app::run_shock_interface(cfg, kSteps, p);
    const auto blk = app::run_shock_interface_blocks(cfg, kSteps, p);
    ASSERT_EQ(grid.rows(), blk.rows());
    for (std::size_t i = 0; i < grid.rows(); ++i) {
      for (std::size_t j = 0; j < grid.cols(); ++j) {
        ASSERT_EQ(grid(i, j), blk(i, j))
            << "p=" << p << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(CfdBlocks, MessageCountsMatchSingleGridWithoutDuplicatePeers) {
  // The scenario domain is always y-periodic, so process grids with npy=2
  // reach the same peer through both y directions and the batched round
  // legitimately coalesces them; on npy=1 (y self-wraps locally) the
  // batched block round must match the single-grid plan message for
  // message. Either way it never sends more.
  const auto cfg = block_test_config();
  constexpr int kSteps = 5;
  for (const int p : {2, 4}) {
    const auto pgrid = mpl::CartGrid2D::near_square(p);
    mpl::TraceSnapshot grid_trace, block_trace;
    mpl::spmd_collect<int>(
        p,
        [&](mpl::Process& proc) {
          CfdSim sim(proc, pgrid, cfg);
          sim.init_shock_interface();
          sim.run(kSteps);
          return 0;
        },
        &grid_trace);
    const auto layout = app::make_cfd_block_layout(cfg, p);
    const auto owner =
        mesh::distribute_blocks_contiguous(layout.nblocks(), p);
    mpl::spmd_collect<int>(
        p,
        [&](mpl::Process& proc) {
          app::CfdBlockSim sim(proc, layout, owner, cfg);
          sim.init_shock_interface();
          sim.run(kSteps);
          return 0;
        },
        &block_trace);
    if (pgrid.npy() == 1) {
      EXPECT_EQ(block_trace.messages, grid_trace.messages) << "p=" << p;
    }
    EXPECT_LE(block_trace.messages, grid_trace.messages) << "p=" << p;
    EXPECT_EQ(block_trace.op(mpl::Op::kAllreduce),
              grid_trace.op(mpl::Op::kAllreduce));
  }
}

TEST(CfdBlocks, OversubscribedDistributionsMatchReferenceBitwise) {
  const auto cfg = block_test_config();
  constexpr int kSteps = 20;
  const auto reference = app::run_shock_interface(cfg, kSteps, 1);
  for (const int np : {2, 4}) {
    app::CfdBlockConfig over;  // 4x2 = 8 blocks, oversubscribed
    over.nbx = 4;
    over.nby = 2;
    app::CfdBlockConfig rr = over;
    rr.owner = mesh::distribute_blocks_round_robin(8, np);
    rr.batched = false;
    for (const auto& config : {over, rr}) {
      const auto blk =
          app::run_shock_interface_blocks(cfg, kSteps, np, config);
      for (std::size_t i = 0; i < reference.rows(); ++i) {
        for (std::size_t j = 0; j < reference.cols(); ++j) {
          ASSERT_EQ(reference(i, j), blk(i, j))
              << "np=" << np << " batched=" << config.batched << " at (" << i
              << "," << j << ")";
        }
      }
    }
  }
}

}  // namespace
