// Tests for the FDTD electromagnetics code (paper section 7.2): the exact
// discrete div-H invariant of the Yee scheme, energy stability, process-
// count invariance (bitwise), causality of wave propagation, and the
// dielectric scatterer's effect.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "apps/em/fdtd3d.hpp"

namespace {

using namespace ppa;
using app::EmConfig;
using app::FdtdSim;

EmConfig small_config() {
  EmConfig cfg;
  cfg.n = 20;
  cfg.sphere_radius = 4.0;
  cfg.src_i = 5;
  cfg.src_j = 10;
  cfg.src_k = 10;
  return cfg;
}

class EmP : public testing::TestWithParam<int> {};

TEST_P(EmP, DivergenceOfHIsExactlyConserved) {
  // div(curl E) == 0 identically on the Yee grid: starting from H = 0, the
  // discrete divergence of H stays at rounding level forever, regardless of
  // sources, materials, or the process decomposition.
  const int p = GetParam();
  const auto pgrid = mpl::CartGrid3D::near_cubic(p);
  const auto cfg = small_config();
  mpl::spmd_run(p, [&](mpl::Process& proc) {
    FdtdSim sim(proc, pgrid, cfg);
    sim.run(40);
    EXPECT_GT(sim.max_abs_ez(), 0.0) << "source should have radiated";
    EXPECT_LT(sim.max_abs_div_h(), 1e-11);
  });
}

TEST_P(EmP, SourceFreeCavityEnergyIsStable) {
  const int p = GetParam();
  const auto pgrid = mpl::CartGrid3D::near_cubic(p);
  const auto cfg = small_config();
  mpl::spmd_run(p, [&](mpl::Process& proc) {
    FdtdSim sim(proc, pgrid, cfg);
    sim.disable_source();
    sim.seed_gaussian_ez(1.0, 3.0);
    const double e0 = sim.field_energy();
    ASSERT_GT(e0, 0.0);
    double emin = e0, emax = e0;
    for (int s = 0; s < 60; ++s) {
      sim.step();
      const double e = sim.field_energy();
      emin = std::min(emin, e);
      emax = std::max(emax, e);
    }
    // Leapfrog energy oscillates between the staggered samplings but must
    // neither grow (instability) nor decay (spurious dissipation).
    EXPECT_GT(emin, 0.5 * e0);
    EXPECT_LT(emax, 1.5 * e0);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, EmP, testing::Values(1, 2, 4, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(EmApp, ProcessCountInvariantBitwise) {
  // No reductions inside the time step: every rank computes identical
  // per-cell arithmetic, so decompositions agree bitwise.
  const auto cfg = small_config();
  const auto p1 = app::run_em_scattering(cfg, 25, 1);
  const auto p8 = app::run_em_scattering(cfg, 25, 8);
  ASSERT_EQ(p1.rows(), p8.rows());
  for (std::size_t i = 0; i < p1.rows(); ++i) {
    for (std::size_t j = 0; j < p1.cols(); ++j) {
      EXPECT_EQ(p1(i, j), p8(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(EmApp, WavePropagationIsCausal) {
  // After few steps the field must still be zero far from the source
  // (numerical wavefront speed <= 1 cell/step for courant < 1).
  const auto cfg = small_config();
  const auto pgrid = mpl::CartGrid3D::near_cubic(2);
  mpl::spmd_run(2, [&](mpl::Process& proc) {
    FdtdSim sim(proc, pgrid, cfg);
    sim.run(5);
    const auto plane = sim.gather_ez_plane(0);
    if (proc.rank() != 0) return;
    // Source at (5, 10); corner (19, 19) is ~16 cells away: untouched.
    EXPECT_EQ(plane(cfg.n - 1, cfg.n - 1), 0.0);
    EXPECT_NE(plane(cfg.src_i, cfg.src_j), 0.0);
  });
}

TEST(EmApp, DielectricSphereScattersDifferently) {
  // The same run with and without the scatterer must differ inside/behind
  // the sphere once the wave reaches it.
  auto cfg = small_config();
  const auto with_sphere = app::run_em_scattering(cfg, 60, 2);
  cfg.eps_sphere = 1.0;  // vacuum: no scatterer
  const auto without = app::run_em_scattering(cfg, 60, 2);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < with_sphere.rows(); ++i) {
    for (std::size_t j = 0; j < with_sphere.cols(); ++j) {
      max_diff = std::max(max_diff, std::abs(with_sphere(i, j) - without(i, j)));
    }
  }
  EXPECT_GT(max_diff, 1e-3);
}

TEST(EmApp, EzPlaneGatherShapesCorrect) {
  const auto cfg = small_config();
  const auto plane = app::run_em_scattering(cfg, 3, 4);
  EXPECT_EQ(plane.rows(), cfg.n);
  EXPECT_EQ(plane.cols(), cfg.n);
}

}  // namespace
