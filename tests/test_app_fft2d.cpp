// Tests for the 2-D FFT application (paper section 5): version 1 (parfor)
// vs version 2 (SPMD) equivalence, correctness against the naive DFT, and
// the archetype's predicted communication pattern (two redistributions).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <string>

#include "apps/fft2d/fft2d.hpp"
#include "mpl/spmd.hpp"
#include "support/rng.hpp"

namespace {

using namespace ppa;
using algo::Complex;

Array2D<Complex> random_grid(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  Array2D<Complex> a(n, m);
  for (auto& v : a.flat()) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return a;
}

double max_abs_diff(const Array2D<Complex>& a, const Array2D<Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

TEST(Fft2dApp, Version1SeqEqualsVersion1Par) {
  // The paper's claim for version 1: replacing forall by do gives identical
  // results — and so does running the foralls with parfor workers.
  auto a = random_grid(32, 16, 3);
  auto b = a;
  app::fft2d_v1(a, seq);
  app::fft2d_v1(b, par(4));
  EXPECT_EQ(max_abs_diff(a, b), 0.0);  // bitwise identical
}

class Fft2dP : public testing::TestWithParam<int> {};

TEST_P(Fft2dP, Version2MatchesVersion1Bitwise) {
  // Version 2 performs the same row/column FFTs on the same data, only
  // distributed; results must match bit for bit.
  const int p = GetParam();
  auto v1 = random_grid(32, 64, 7);
  const auto v2 = app::fft2d_spmd(v1, p);
  app::fft2d_v1(v1, seq);
  EXPECT_EQ(max_abs_diff(v1, v2), 0.0);
}

TEST_P(Fft2dP, InverseRoundtrip) {
  const int p = GetParam();
  const auto original = random_grid(16, 32, 11);
  const auto fwd = app::fft2d_spmd(original, p, false);
  // fft2d is rows-then-cols in both directions; for the separable transform
  // the inverse in the same order is still the inverse.
  const auto back = app::fft2d_spmd(fwd, p, true);
  EXPECT_LT(max_abs_diff(back, original), 1e-10);
}

TEST_P(Fft2dP, ImpulseTransformsToConstant) {
  const int p = GetParam();
  Array2D<Complex> a(16, 16, Complex(0.0, 0.0));
  a(0, 0) = Complex(1.0, 0.0);
  const auto f = app::fft2d_spmd(a, p);
  for (const auto& v : f.flat()) {
    EXPECT_NEAR(std::abs(v - Complex(1.0, 0.0)), 0.0, 1e-12);
  }
}

TEST_P(Fft2dP, PlaneWaveHitsSingleBin) {
  const int p = GetParam();
  constexpr std::size_t kN = 16, kM = 32;
  constexpr std::size_t kI = 3, kJ = 5;
  Array2D<Complex> a(kN, kM);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kM; ++j) {
      const double phase =
          2.0 * 3.14159265358979323846 *
          (static_cast<double>(kI * i) / kN + static_cast<double>(kJ * j) / kM);
      a(i, j) = {std::cos(phase), std::sin(phase)};
    }
  }
  const auto f = app::fft2d_spmd(a, p);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kM; ++j) {
      const double expected = (i == kI && j == kJ) ? static_cast<double>(kN * kM) : 0.0;
      EXPECT_NEAR(std::abs(f(i, j)), expected, 1e-7) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, Fft2dP, testing::Values(1, 2, 3, 4, 5, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(Fft2dApp, UsesExactlyTwoRedistributions) {
  // Paper Fig 11: row FFTs -> redistribute -> col FFTs -> redistribute.
  constexpr int kP = 4;
  mpl::TraceSnapshot trace;
  mpl::spmd_collect<int>(
      kP,
      [&](mpl::Process& p) {
        mesh::RowDistributed<Complex> data(32, 32, p.size(), p.rank());
        data.init_from_global([](std::size_t r, std::size_t c) {
          return Complex(static_cast<double>(r), static_cast<double>(c));
        });
        app::fft2d_process(p, data);
        return 0;
      },
      &trace);
  EXPECT_EQ(trace.op(mpl::Op::kAlltoall), 2u * kP);
  EXPECT_EQ(trace.op(mpl::Op::kBroadcast), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kReduce), 0u);
  // 2 all-to-alls of P*(P-1) messages each; no other traffic.
  EXPECT_EQ(trace.messages, 2u * kP * (kP - 1));
}

TEST(Fft2dApp, MoreProcessesThanRows) {
  // 4 rows over 6 processes: trailing ranks own empty blocks.
  auto v1 = random_grid(4, 8, 13);
  const auto v2 = app::fft2d_spmd(v1, 6);
  app::fft2d_v1(v1, seq);
  EXPECT_EQ(max_abs_diff(v1, v2), 0.0);
}

}  // namespace
