// Tests for the Jacobi Poisson solver (paper section 6): version-1/version-2
// bitwise equivalence, convergence to known solutions, the discrete maximum
// principle, and the archetype's per-iteration communication pattern.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <string>

#include "apps/poisson/poisson.hpp"

namespace {

using namespace ppa;
using app::PoissonProblem;

class PoissonP : public testing::TestWithParam<int> {};

TEST_P(PoissonP, Version2MatchesVersion1Bitwise) {
  // Same arithmetic per point, max-based convergence test => identical
  // fields and iteration counts regardless of the process grid.
  const int p = GetParam();
  PoissonProblem prob;
  prob.nx = 33;
  prob.ny = 21;
  prob.tolerance = 1e-6;
  prob.g = [](double x, double y) { return x * x - y * y; };
  prob.f = [](double, double) { return 0.0; };

  const auto v1 = app::poisson_v1(prob);
  const auto v2 = app::poisson_spmd(prob, p);
  EXPECT_EQ(v1.iterations, v2.iterations);
  ASSERT_EQ(v1.u.rows(), v2.u.rows());
  for (std::size_t i = 0; i < v1.u.rows(); ++i) {
    for (std::size_t j = 0; j < v1.u.cols(); ++j) {
      EXPECT_EQ(v1.u(i, j), v2.u(i, j)) << "at (" << i << "," << j << ")";
    }
  }
}

TEST_P(PoissonP, ConvergesToLinearHarmonicExactly) {
  // u = x + y is harmonic and exactly representable by the 5-point stencil:
  // Jacobi must converge to it (up to the tolerance) from a zero interior.
  const int p = GetParam();
  PoissonProblem prob;
  prob.nx = 17;
  prob.ny = 17;
  prob.tolerance = 1e-10;
  prob.g = [](double x, double y) { return x + y; };
  const auto r = app::poisson_spmd(prob, p);
  const double h = 1.0 / static_cast<double>(prob.nx - 1);
  for (std::size_t i = 0; i < prob.nx; ++i) {
    for (std::size_t j = 0; j < prob.ny; ++j) {
      const double expect = static_cast<double>(i) * h + static_cast<double>(j) * h;
      EXPECT_NEAR(r.u(i, j), expect, 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, PoissonP, testing::Values(1, 2, 3, 4, 6),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(PoissonApp, ManufacturedSolutionConverges) {
  // u* = sin(pi x) sin(pi y): f = -2 pi^2 u*, g = 0. The discrete solution
  // approaches u* to O(h^2).
  PoissonProblem prob;
  prob.nx = 33;
  prob.ny = 33;
  prob.tolerance = 1e-9;
  prob.f = [](double x, double y) {
    return -2.0 * std::numbers::pi * std::numbers::pi * std::sin(std::numbers::pi * x) *
           std::sin(std::numbers::pi * y);
  };
  const auto r = app::poisson_spmd(prob, 4);
  double max_err = 0.0;
  const double h = 1.0 / 32.0;
  for (std::size_t i = 0; i < prob.nx; ++i) {
    for (std::size_t j = 0; j < prob.ny; ++j) {
      const double exact = std::sin(std::numbers::pi * static_cast<double>(i) * h) *
                           std::sin(std::numbers::pi * static_cast<double>(j) * h);
      max_err = std::max(max_err, std::abs(r.u(i, j) - exact));
    }
  }
  EXPECT_LT(max_err, 5e-3);  // discretization + iteration error at h = 1/32
}

TEST(PoissonApp, DiscreteMaximumPrinciple) {
  // With f = 0 the converged solution's extrema lie on the boundary.
  PoissonProblem prob;
  prob.nx = 25;
  prob.ny = 25;
  prob.tolerance = 1e-8;
  prob.g = [](double x, double y) {
    return std::cos(3.0 * x) + 0.5 * std::sin(5.0 * y);
  };
  const auto r = app::poisson_spmd(prob, 4);
  double bmin = 1e300, bmax = -1e300;
  for (std::size_t i = 0; i < prob.nx; ++i) {
    for (std::size_t j = 0; j < prob.ny; ++j) {
      if (i == 0 || i == prob.nx - 1 || j == 0 || j == prob.ny - 1) {
        bmin = std::min(bmin, r.u(i, j));
        bmax = std::max(bmax, r.u(i, j));
      }
    }
  }
  const double slack = 1e-6;  // residual iteration error
  for (std::size_t i = 1; i + 1 < prob.nx; ++i) {
    for (std::size_t j = 1; j + 1 < prob.ny; ++j) {
      EXPECT_GE(r.u(i, j), bmin - slack);
      EXPECT_LE(r.u(i, j), bmax + slack);
    }
  }
}

TEST(PoissonApp, IterationCountGrowsWithResolution) {
  // Jacobi's convergence slows as O(h^-2): a finer grid needs more sweeps.
  PoissonProblem coarse, fine;
  coarse.nx = coarse.ny = 9;
  fine.nx = fine.ny = 17;
  coarse.tolerance = fine.tolerance = 1e-6;
  coarse.g = fine.g = [](double x, double y) { return x * y; };
  const auto rc = app::poisson_v1(coarse);
  const auto rf = app::poisson_v1(fine);
  EXPECT_GT(rf.iterations, rc.iterations);
}

TEST(PoissonApp, MaxItersGuards) {
  PoissonProblem prob;
  prob.nx = prob.ny = 65;
  prob.tolerance = 0.0;  // unreachable
  prob.max_iters = 10;
  prob.g = [](double x, double) { return x; };
  const auto r = app::poisson_v1(prob);
  EXPECT_EQ(r.iterations, 10u);
}

TEST(PoissonApp, PerIterationCommunicationPattern) {
  // Paper Fig 14: each iteration = one boundary exchange + one allreduce.
  constexpr int kP = 4;
  PoissonProblem prob;
  prob.nx = prob.ny = 17;
  prob.tolerance = 1e-3;
  prob.g = [](double x, double y) { return x - y; };

  const auto pgrid = mpl::CartGrid2D::near_square(kP);
  mpl::TraceSnapshot trace;
  std::size_t iters = 0;
  mpl::spmd_collect<int>(
      kP,
      [&](mpl::Process& p) {
        const auto r = app::poisson_process(p, pgrid, prob);
        if (p.rank() == 0) iters = r.iterations;
        return 0;
      },
      &trace);
  // One allreduce per iteration (counted once per rank) plus the final
  // gather for output.
  EXPECT_EQ(trace.op(mpl::Op::kAllreduce), iters * kP);
  EXPECT_EQ(trace.op(mpl::Op::kGather), 2u * kP);  // header + payload gathers
}

// ----------------------------------------------------------- block driver --

PoissonProblem block_test_problem() {
  PoissonProblem prob;
  prob.nx = 33;
  prob.ny = 21;
  prob.tolerance = 1e-6;
  prob.g = [](double x, double y) { return x * x - y * y; };
  prob.f = [](double, double) { return 0.0; };
  return prob;
}

TEST(PoissonBlocks, OneBlockPerRankMatchesSingleGridBitwise) {
  // At one block per rank (the default layout) the block-set driver is the
  // single-grid driver with a different substrate: same fields, bit for
  // bit, and the same iteration count.
  const auto prob = block_test_problem();
  for (const int p : {1, 2, 4}) {
    const auto v2 = app::poisson_spmd(prob, p);
    const auto blk = app::poisson_blocks_spmd(prob, p);
    EXPECT_EQ(v2.iterations, blk.iterations) << "p=" << p;
    ASSERT_EQ(v2.u.rows(), blk.u.rows());
    for (std::size_t i = 0; i < v2.u.rows(); ++i) {
      for (std::size_t j = 0; j < v2.u.cols(); ++j) {
        ASSERT_EQ(v2.u(i, j), blk.u(i, j))
            << "p=" << p << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(PoissonBlocks, OneBlockPerRankMatchesSingleGridMessageCounts) {
  // The batched block exchange at one block per rank sends exactly the
  // messages the single-grid plan sends (non-periodic, no duplicate
  // peers), and the collective pattern is unchanged.
  constexpr int kP = 4;
  const auto prob = block_test_problem();
  const auto pgrid = mpl::CartGrid2D::near_square(kP);
  mpl::TraceSnapshot grid_trace, block_trace;
  mpl::spmd_collect<int>(
      kP,
      [&](mpl::Process& p) {
        (void)app::poisson_process(p, pgrid, prob);
        return 0;
      },
      &grid_trace);
  const auto layout = app::make_poisson_block_layout(prob, kP);
  const auto owner =
      mesh::distribute_blocks_contiguous(layout.nblocks(), kP);
  mpl::spmd_collect<int>(
      kP,
      [&](mpl::Process& p) {
        (void)app::poisson_blocks_process(p, layout, owner, prob);
        return 0;
      },
      &block_trace);
  EXPECT_EQ(block_trace.messages, grid_trace.messages);
  EXPECT_EQ(block_trace.op(mpl::Op::kAllreduce),
            grid_trace.op(mpl::Op::kAllreduce));
  EXPECT_EQ(block_trace.op(mpl::Op::kGather), grid_trace.op(mpl::Op::kGather));
}

TEST(PoissonBlocks, AnyDistributionMatchesReferenceBitwise) {
  // Oversubscribed, non-divisible, and deliberately imbalanced block→rank
  // maps — batched and not — all reproduce the reference field bitwise.
  const auto prob = block_test_problem();
  const auto reference = app::poisson_spmd(prob, 1);

  for (const int np : {1, 2, 4, 8}) {
    std::vector<app::PoissonBlockConfig> configs;
    app::PoissonBlockConfig over;  // 8 blocks, oversubscribed for np < 8
    over.nbx = 4;
    over.nby = 2;
    configs.push_back(over);
    app::PoissonBlockConfig nondiv;  // 9 blocks never divide evenly
    nondiv.nbx = 3;
    nondiv.nby = 3;
    nondiv.owner = mesh::distribute_blocks_round_robin(9, np);
    configs.push_back(nondiv);
    app::PoissonBlockConfig lopsided;  // all on rank 0 but one
    lopsided.nbx = 4;
    lopsided.nby = 2;
    lopsided.owner.assign(8, 0);
    lopsided.owner[5] = np - 1;
    lopsided.batched = false;  // also exercises the per-pair path
    configs.push_back(lopsided);

    for (const auto& config : configs) {
      const auto blk = app::poisson_blocks_spmd(prob, np, config);
      EXPECT_EQ(reference.iterations, blk.iterations) << "np=" << np;
      for (std::size_t i = 0; i < reference.u.rows(); ++i) {
        for (std::size_t j = 0; j < reference.u.cols(); ++j) {
          ASSERT_EQ(reference.u(i, j), blk.u(i, j))
              << "np=" << np << " nbx=" << config.nbx << " at (" << i << ","
              << j << ")";
        }
      }
    }
  }
}

}  // namespace
