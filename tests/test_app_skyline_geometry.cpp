// Tests for the skyline and geometry one-deep applications (paper sections
// 3.6.1 and 3.6): correctness against the sequential oracles, the
// sequential-equals-parallel guarantee, and edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/geometry/onedeep_closest_pair.hpp"
#include "apps/geometry/onedeep_hull.hpp"
#include "apps/skyline/onedeep_skyline.hpp"
#include "support/rng.hpp"

namespace {

using namespace ppa;
using algo::Building;
using algo::Point2;
using algo::Skyline;

std::vector<Building> random_buildings(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Building> bs;
  bs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double l = rng.uniform(0.0, 200.0);
    bs.push_back({l, l + rng.uniform(0.5, 30.0), rng.uniform(1.0, 50.0)});
  }
  return bs;
}

std::vector<Point2> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)});
  }
  return pts;
}

// ---------------------------------------------------- skyline conversions --

TEST(SkylineApp, BuildingsSkylineRoundtrip) {
  const auto bs = random_buildings(30, 4);
  const auto s = algo::skyline_divide_and_conquer(bs);
  const auto segments = app::skyline_to_buildings(s);
  EXPECT_EQ(app::buildings_to_skyline(segments), s);
}

TEST(SkylineApp, EmptySkylineConversions) {
  EXPECT_TRUE(app::skyline_to_buildings({}).empty());
  EXPECT_TRUE(app::buildings_to_skyline({}).empty());
}

// ------------------------------------------------------------ skyline app --

class SkylineAppP : public testing::TestWithParam<int> {};

TEST_P(SkylineAppP, MatchesSequentialOracle) {
  const int p = GetParam();
  const auto bs = random_buildings(100, 42 + static_cast<std::uint64_t>(p));
  const auto expected = algo::skyline_divide_and_conquer(bs);
  EXPECT_EQ(app::onedeep_skyline(bs, p), expected);
}

TEST_P(SkylineAppP, SequentialEqualsParallel) {
  const int p = GetParam();
  const auto bs = random_buildings(80, 7 + static_cast<std::uint64_t>(p));
  EXPECT_EQ(app::onedeep_skyline_sequential(bs, p), app::onedeep_skyline(bs, p));
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, SkylineAppP, testing::Values(1, 2, 3, 4, 6, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(SkylineApp, DisjointTownsAcrossProcessBlocks) {
  // Two far-apart clusters: the strip decomposition must not invent height
  // between them.
  std::vector<Building> bs{{0, 5, 10}, {2, 8, 6}, {100, 104, 3}, {101, 110, 8}};
  const auto s = app::onedeep_skyline(bs, 4);
  EXPECT_EQ(s, algo::skyline_divide_and_conquer(bs));
  EXPECT_DOUBLE_EQ(algo::skyline_height_at(s, 50.0), 0.0);
}

TEST(SkylineApp, SingleBuildingManyProcesses) {
  const std::vector<Building> bs{{1.0, 2.0, 5.0}};
  EXPECT_EQ(app::onedeep_skyline(bs, 6), (Skyline{{1.0, 5.0}, {2.0, 0.0}}));
}

TEST(SkylineApp, EmptyInput) {
  EXPECT_TRUE(app::onedeep_skyline({}, 4).empty());
}

TEST(SkylineApp, IdenticalBuildings) {
  const std::vector<Building> bs(50, Building{3.0, 9.0, 4.0});
  EXPECT_EQ(app::onedeep_skyline(bs, 5), (Skyline{{3.0, 4.0}, {9.0, 0.0}}));
}

// --------------------------------------------------------------- hull app --

class HullAppP : public testing::TestWithParam<int> {};

TEST_P(HullAppP, MatchesSequentialHull) {
  const int p = GetParam();
  const auto pts = random_points(300, 11 + static_cast<std::uint64_t>(p));
  const auto expected = algo::convex_hull(pts);
  EXPECT_EQ(app::onedeep_hull(pts, p), expected);
}

TEST_P(HullAppP, SequentialEqualsParallel) {
  const int p = GetParam();
  const auto pts = random_points(200, 23 + static_cast<std::uint64_t>(p));
  EXPECT_EQ(app::onedeep_hull_sequential(pts, p), app::onedeep_hull(pts, p));
}

TEST_P(HullAppP, GatherBroadcastStrategyAgrees) {
  const int p = GetParam();
  const auto pts = random_points(150, 31 + static_cast<std::uint64_t>(p));
  EXPECT_EQ(app::onedeep_hull(pts, p, onedeep::ParamStrategy::kRootBroadcast),
            app::onedeep_hull(pts, p, onedeep::ParamStrategy::kReplicated));
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, HullAppP, testing::Values(1, 2, 3, 4, 7),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(HullApp, CollinearPoints) {
  std::vector<Point2> pts;
  for (int i = 0; i < 40; ++i) pts.push_back({static_cast<double>(i), 2.0});
  const auto h = app::onedeep_hull(pts, 4);
  EXPECT_EQ(h.size(), 2u);
}

TEST(HullApp, FewerPointsThanProcesses) {
  const std::vector<Point2> pts{{0, 0}, {1, 0}, {0, 1}};
  EXPECT_EQ(app::onedeep_hull(pts, 8).size(), 3u);
}

// ------------------------------------------------------- closest pair app --

class ClosestPairAppP : public testing::TestWithParam<int> {};

TEST_P(ClosestPairAppP, MatchesSequentialAlgorithm) {
  const int p = GetParam();
  const auto pts = random_points(500, 3 + static_cast<std::uint64_t>(p));
  const double expected =
      algo::closest_pair(std::span<const Point2>(pts)).distance;
  EXPECT_DOUBLE_EQ(app::onedeep_closest_pair(pts, p), expected);
}

TEST_P(ClosestPairAppP, PlantedCrossBoundaryPair) {
  const int p = GetParam();
  auto pts = random_points(300, 101 + static_cast<std::uint64_t>(p));
  // Plant the closest pair far apart in rank order but adjacent in x, so it
  // almost surely straddles a slab boundary after the split phase.
  pts.insert(pts.begin(), {0.001, 0.0});
  pts.push_back({-0.001, 0.0});
  const double expected =
      algo::closest_pair(std::span<const Point2>(pts)).distance;
  EXPECT_DOUBLE_EQ(app::onedeep_closest_pair(pts, p), expected);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ClosestPairAppP, testing::Values(1, 2, 3, 4, 6, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(ClosestPairApp, FewerPointsThanProcesses) {
  // Each slab gets at most one point: the infinite-delta fallback path.
  const std::vector<Point2> pts{{0, 0}, {10, 0}, {10, 7}, {30, 0}};
  EXPECT_DOUBLE_EQ(app::onedeep_closest_pair(pts, 8), 7.0);
}

TEST(ClosestPairApp, DuplicatePointsAcrossSlabs) {
  std::vector<Point2> pts = random_points(100, 55);
  pts.push_back(pts.front());  // exact duplicate -> distance 0
  EXPECT_DOUBLE_EQ(app::onedeep_closest_pair(pts, 4), 0.0);
}

TEST(ClosestPairApp, ClusteredPlusOutliers) {
  std::vector<Point2> pts;
  Rng rng(66);
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  pts.push_back({1000.0, 1000.0});
  pts.push_back({-1000.0, 1000.0});
  const double expected =
      algo::closest_pair(std::span<const Point2>(pts)).distance;
  EXPECT_DOUBLE_EQ(app::onedeep_closest_pair(pts, 5), expected);
}

}  // namespace
