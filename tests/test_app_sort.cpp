// Tests for the sorting applications: one-deep mergesort (paper section
// 3.5), one-deep quicksort (section 3.6.2), and the traditional parallel
// mergesort baseline (Fig 1 / Fig 6), including the archetype's
// sequential-equals-parallel guarantee and communication-pattern checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "apps/sort/sort.hpp"
#include "support/rng.hpp"

namespace {

using namespace ppa;

struct Case {
  int nprocs;
  std::uint64_t seed;
  std::size_t n;
};

class SortAppP : public testing::TestWithParam<Case> {};

TEST_P(SortAppP, OneDeepMergesortSortsCorrectly) {
  const auto [p, seed, n] = GetParam();
  const auto data = random_ints(n, -100000, 100000, seed);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(app::onedeep_mergesort(data, p), expected);
}

TEST_P(SortAppP, OneDeepMergesortSequentialEqualsParallel) {
  const auto [p, seed, n] = GetParam();
  const auto data = random_ints(n, -1000, 1000, seed);  // duplicates likely
  EXPECT_EQ(app::onedeep_mergesort_sequential(data, p),
            app::onedeep_mergesort(data, p));
}

TEST_P(SortAppP, OneDeepQuicksortSortsCorrectly) {
  const auto [p, seed, n] = GetParam();
  const auto data = random_ints(n, -100000, 100000, seed + 1);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(app::onedeep_quicksort(data, p), expected);
}

TEST_P(SortAppP, OneDeepQuicksortSequentialEqualsParallel) {
  const auto [p, seed, n] = GetParam();
  const auto data = random_ints(n, -500, 500, seed + 2);
  EXPECT_EQ(app::onedeep_quicksort_sequential(data, p),
            app::onedeep_quicksort(data, p));
}

TEST_P(SortAppP, TraditionalMergesortSortsCorrectly) {
  const auto [p, seed, n] = GetParam();
  const auto data = random_ints(n, -100000, 100000, seed + 3);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(app::traditional_mergesort(data, p), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortAppP,
    testing::Values(Case{1, 11, 500}, Case{2, 12, 1000}, Case{3, 13, 777},
                    Case{4, 14, 2048}, Case{5, 15, 999}, Case{8, 16, 4096},
                    Case{7, 17, 123}, Case{4, 18, 3}, Case{6, 19, 6}),
    [](const testing::TestParamInfo<Case>& info) {
      std::string name = "P";
      name += std::to_string(info.param.nprocs);
      name += "_n";
      name += std::to_string(info.param.n);
      return name;
    });

TEST(SortApp, EmptyInput) {
  EXPECT_TRUE(app::onedeep_mergesort(std::vector<int>{}, 4).empty());
  EXPECT_TRUE(app::onedeep_quicksort(std::vector<int>{}, 4).empty());
  EXPECT_TRUE(app::traditional_mergesort(std::vector<int>{}, 4).empty());
}

TEST(SortApp, SingleElement) {
  const std::vector<int> one{42};
  EXPECT_EQ(app::onedeep_mergesort(one, 4), one);
  EXPECT_EQ(app::onedeep_quicksort(one, 4), one);
  EXPECT_EQ(app::traditional_mergesort(one, 4), one);
}

TEST(SortApp, AllDuplicates) {
  const std::vector<int> dup(1000, 7);
  EXPECT_EQ(app::onedeep_mergesort(dup, 4), dup);
  EXPECT_EQ(app::onedeep_quicksort(dup, 4), dup);
}

TEST(SortApp, AlreadySortedAndReversed) {
  std::vector<int> up(2000);
  std::iota(up.begin(), up.end(), -1000);
  std::vector<int> down(up.rbegin(), up.rend());
  EXPECT_EQ(app::onedeep_mergesort(up, 6), up);
  EXPECT_EQ(app::onedeep_mergesort(down, 6), up);
  EXPECT_EQ(app::onedeep_quicksort(down, 6), up);
}

TEST(SortApp, SortsDoubles) {
  const auto data = random_doubles(1500, -1.0, 1.0, 77);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(app::onedeep_mergesort(data, 4), expected);
  EXPECT_EQ(app::onedeep_quicksort(data, 4), expected);
}

TEST(SortApp, CustomComparatorDescending) {
  const auto data = random_ints(800, -100, 100, 5);
  auto expected = data;
  std::sort(expected.begin(), expected.end(), std::greater<int>{});
  EXPECT_EQ(app::onedeep_mergesort(data, 3, std::greater<int>{}), expected);
  EXPECT_EQ(app::onedeep_quicksort(data, 3, std::greater<int>{}), expected);
}

TEST(SortApp, SmallSampleCountStillSorts) {
  // Poor splitters cause imbalance, never incorrectness.
  const auto data = random_ints(2000, 0, 10, 21);  // heavy duplicates
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(app::onedeep_mergesort(data, 8, std::less<int>{}, 2), expected);
  EXPECT_EQ(app::onedeep_quicksort(data, 8, std::less<int>{}, 2), expected);
}

TEST(SortApp, MoreProcessesThanElements) {
  const std::vector<int> data{3, 1, 2};
  const std::vector<int> expected{1, 2, 3};
  EXPECT_EQ(app::onedeep_mergesort(data, 8), expected);
  EXPECT_EQ(app::onedeep_quicksort(data, 8), expected);
}

TEST(SortApp, MergePhaseCommunicationPattern) {
  // One-deep mergesort with replicated parameters: exactly one allgather
  // (splitter samples) and one all-to-all (redistribution) — and no other
  // collective.
  const auto data = random_ints(512, 0, 1 << 20, 9);
  constexpr int kP = 4;
  auto locals = onedeep::block_distribute(data, kP);
  mpl::TraceSnapshot trace;
  mpl::spmd_collect<std::vector<int>>(
      kP,
      [&](mpl::Process& p) {
        app::OneDeepMergesort<int> spec;
        return onedeep::run_process(
            spec, p, std::move(locals[static_cast<std::size_t>(p.rank())]));
      },
      &trace);
  EXPECT_EQ(trace.op(mpl::Op::kAllgather), kP);
  EXPECT_EQ(trace.op(mpl::Op::kAlltoall), kP);
  EXPECT_EQ(trace.op(mpl::Op::kReduce), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kBarrier), 0u);
}

TEST(SortApp, OneDeepMovesEachElementAtMostOnce) {
  // The one-deep claim: payload volume for the merge redistribution is at
  // most one traversal of the data (n elements), unlike the traditional
  // algorithm's per-level traversals. Samples/splitters add lower-order
  // terms only.
  const std::size_t n = 4096;
  const auto data = random_ints(n, 0, 1 << 30, 31);
  constexpr int kP = 4;
  auto locals = onedeep::block_distribute(data, kP);
  mpl::TraceSnapshot trace;
  mpl::spmd_collect<std::vector<int>>(
      kP,
      [&](mpl::Process& p) {
        app::OneDeepMergesort<int> spec;
        return onedeep::run_process(
            spec, p, std::move(locals[static_cast<std::size_t>(p.rank())]));
      },
      &trace);
  const std::uint64_t payload_elems = trace.bytes / sizeof(int);
  // n elements redistribution + P*64 samples replicated P ways (allgather
  // gathers then broadcasts) — comfortably below 2n for these parameters.
  EXPECT_LT(payload_elems, 2 * n);
}

}  // namespace
