// Tests for the axisymmetric spectral flow code (paper section 7.3):
// process-count invariance (bitwise), spectral-accuracy diffusion decay,
// wall conditions, energy decay under viscosity, and the redistribution
// communication pattern.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <string>

#include "apps/spectral/swirl.hpp"

namespace {

using namespace ppa;
using app::SwirlConfig;
using app::SwirlSim;

SwirlConfig small_config() {
  SwirlConfig cfg;
  cfg.nr = 33;
  cfg.nz = 32;
  cfg.nu = 1e-3;
  cfg.dt = 1e-3;
  return cfg;
}

class SwirlP : public testing::TestWithParam<int> {};

TEST_P(SwirlP, ProcessCountInvariantBitwise) {
  const int p = GetParam();
  const auto cfg = small_config();
  const auto f1 = app::run_swirl(cfg, 20, 1);
  const auto fp = app::run_swirl(cfg, 20, p);
  ASSERT_EQ(f1.rows(), fp.rows());
  for (std::size_t i = 0; i < f1.rows(); ++i) {
    for (std::size_t j = 0; j < f1.cols(); ++j) {
      EXPECT_EQ(f1(i, j), fp(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST_P(SwirlP, ZeroFieldStaysZero) {
  const int p = GetParam();
  const auto cfg = small_config();
  mpl::spmd_run(p, [&](mpl::Process& proc) {
    SwirlSim sim(proc, cfg);
    sim.set_field([](double, double) { return 0.0; });
    sim.run(10);
    EXPECT_EQ(sim.max_abs_u(), 0.0);
  });
}

TEST_P(SwirlP, WallsRemainNoSlip) {
  const int p = GetParam();
  const auto cfg = small_config();
  mpl::spmd_run(p, [&](mpl::Process& proc) {
    SwirlSim sim(proc, cfg);
    sim.init_jet();
    sim.run(25);
    const auto field = sim.gather_field(0);
    if (proc.rank() != 0) return;
    for (std::size_t j = 0; j < cfg.nz; ++j) {
      EXPECT_EQ(field(0, j), 0.0);
      EXPECT_EQ(field(cfg.nr - 1, j), 0.0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, SwirlP, testing::Values(2, 3, 4, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(SwirlApp, AxialFourierModeDecaysAtSpectralRate) {
  // Pure diffusion of a single axial mode with a z-independent radial
  // envelope is dominated by the nu*k^2 axial term early on; check the
  // decay factor of the mode amplitude against exp(-nu k^2 t) loosely and
  // monotonicity strictly.
  auto cfg = small_config();
  cfg.nonlinear = false;
  cfg.nu = 5e-3;
  const int mode = 3;
  const double kw = 2.0 * std::numbers::pi * mode / cfg.lz;

  mpl::spmd_run(2, [&](mpl::Process& proc) {
    SwirlSim sim(proc, cfg);
    const double rc = 0.5 * (cfg.r_in + cfg.r_out);
    const double width = 0.25;
    sim.set_field([&](double r, double z) {
      const double env = std::exp(-std::pow((r - rc) / width, 2.0));
      return env * std::cos(kw * z);
    });
    const double a0 = sim.max_abs_u();
    const int steps = 200;
    sim.run(steps);
    const double a1 = sim.max_abs_u();
    EXPECT_LT(a1, a0);  // strictly decaying
    const double t = cfg.dt * steps;
    const double axial_only = std::exp(-cfg.nu * kw * kw * t);
    // The radial operator adds extra decay; the measured factor must lie
    // below the axial-only bound but not absurdly far below.
    EXPECT_LT(a1 / a0, axial_only + 1e-3);
    EXPECT_GT(a1 / a0, 0.2 * axial_only);
  });
}

TEST(SwirlApp, ViscousEnergyDecays) {
  auto cfg = small_config();
  cfg.nu = 2e-3;
  mpl::spmd_run(4, [&](mpl::Process& proc) {
    SwirlSim sim(proc, cfg);
    sim.init_jet();
    double prev = sim.kinetic_energy();
    ASSERT_GT(prev, 0.0);
    for (int block = 0; block < 5; ++block) {
      sim.run(20);
      const double e = sim.kinetic_energy();
      EXPECT_LT(e, prev * 1.0001) << "energy must not grow under viscosity";
      prev = e;
    }
  });
}

TEST(SwirlApp, StepUsesTwoRedistributions) {
  // Per step: rows -> cols -> rows (paper Fig 7 twice) and nothing else.
  constexpr int kP = 4;
  const auto cfg = small_config();
  mpl::TraceSnapshot trace;
  mpl::spmd_collect<int>(
      kP,
      [&](mpl::Process& proc) {
        SwirlSim sim(proc, cfg);
        sim.init_jet();
        sim.step();
        return 0;
      },
      &trace);
  EXPECT_EQ(trace.op(mpl::Op::kAlltoall), 2u * kP);
  EXPECT_EQ(trace.op(mpl::Op::kAllreduce), 0u);
}

TEST(SwirlApp, NonlinearTermTransfersEnergyAcrossModes) {
  // With advection on, a single mode seeds its harmonics (classic Burgers
  // steepening in z): after some steps the field is no longer a pure mode.
  auto cfg = small_config();
  cfg.nonlinear = true;
  cfg.nu = 1e-4;
  cfg.dt = 5e-4;
  mpl::spmd_run(2, [&](mpl::Process& proc) {
    SwirlSim sim(proc, cfg);
    const double rc = 0.5 * (cfg.r_in + cfg.r_out);
    const double kw = 2.0 * std::numbers::pi / cfg.lz;
    sim.set_field([&](double r, double z) {
      const double env = std::exp(-std::pow((r - rc) / 0.3, 2.0));
      return 0.5 * env * std::sin(kw * z);
    });
    sim.run(100);
    const auto field = sim.gather_field(0);
    if (proc.rank() != 0) return;
    // Project the mid-radius row onto mode 2; steepening must excite it.
    const std::size_t mid = cfg.nr / 2;
    double c2 = 0.0, s2 = 0.0;
    for (std::size_t j = 0; j < cfg.nz; ++j) {
      const double z = 2.0 * std::numbers::pi * static_cast<double>(j) /
                       static_cast<double>(cfg.nz);
      c2 += field(mid, j) * std::cos(2.0 * z);
      s2 += field(mid, j) * std::sin(2.0 * z);
    }
    EXPECT_GT(std::hypot(c2, s2) / static_cast<double>(cfg.nz), 1e-6);
  });
}

}  // namespace
