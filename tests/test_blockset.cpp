// Tests for the multi-block mesh substrate (meshspectral/blockset.hpp +
// blockplan.hpp): layout indexing, block→rank distributions, halo
// correctness across blocks and ranks (periodic and not, corners and not,
// self-wrap), batched one-message-per-peer rounds, bitwise equivalence of
// arbitrary distributions (oversubscribed / non-divisible / imbalanced) to
// a single-rank reference, the N=1 parity with ExchangePlan2D, the sparse
// allocation protocol (piggybacked wake-up, zero-filled halos from
// unallocated neighbors, deallocation sweep), block-decomposed gather /
// scatter round trips, and the typed shape-mismatch guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "meshspectral/meshspectral.hpp"
#include "mpl/spmd.hpp"

namespace {

using namespace ppa;
using mesh::BlockExchangeOptions;
using mesh::BlockExchangePlan2D;
using mesh::BlockLayout2D;
using mesh::BlockSet;

/// Cell tag, offset so no in-domain cell collides with the 0.0 sentinel
/// that zero-initialized ghosts hold.
double tagval(std::size_t gi, std::size_t gj) {
  return static_cast<double>(gi) * 1000.0 + static_cast<double>(gj) + 7.0;
}

std::size_t wrap(std::ptrdiff_t v, std::size_t n) {
  const auto m = static_cast<std::ptrdiff_t>(n);
  return static_cast<std::size_t>(((v % m) + m) % m);
}

BlockLayout2D make_layout(std::size_t nx, std::size_t ny, int nbx, int nby,
                          mesh::Periodicity periodic) {
  BlockLayout2D layout;
  layout.global_nx = nx;
  layout.global_ny = ny;
  layout.nbx = nbx;
  layout.nby = nby;
  layout.ghost = 1;
  layout.periodic = periodic;
  return layout;
}

/// Check every ghost cell of one block after an exchange of tagval data:
/// in-domain ghosts (wrapping periodic axes) must hold the owning cell's
/// tag; out-of-domain ghosts — and corner ghosts when `corners` is off —
/// must still hold the 0.0 the allocation zero-filled.
void expect_block_ghosts(const mesh::MeshBlock<double>& b,
                         const BlockLayout2D& layout, bool corners) {
  const auto& g = b.grid();
  const auto nx = static_cast<std::ptrdiff_t>(g.nx());
  const auto ny = static_cast<std::ptrdiff_t>(g.ny());
  for (std::ptrdiff_t i = -1; i < nx + 1; ++i) {
    for (std::ptrdiff_t j = -1; j < ny + 1; ++j) {
      const bool gx = (i < 0 || i >= nx);
      const bool gy = (j < 0 || j >= ny);
      if (!gx && !gy) continue;
      const auto gi = static_cast<std::ptrdiff_t>(b.x_range().lo) + i;
      const auto gj = static_cast<std::ptrdiff_t>(b.y_range().lo) + j;
      const bool in_x =
          gi >= 0 && gi < static_cast<std::ptrdiff_t>(layout.global_nx);
      const bool in_y =
          gj >= 0 && gj < static_cast<std::ptrdiff_t>(layout.global_ny);
      const bool covered = (!gx || in_x || layout.periodic.x) &&
                           (!gy || in_y || layout.periodic.y) &&
                           (corners || !gx || !gy);
      if (!covered) {
        EXPECT_EQ(g(i, j), 0.0) << "block " << b.id() << " ghost (" << i
                                << "," << j << ") touched";
        continue;
      }
      const std::size_t wi = layout.periodic.x
                                 ? wrap(gi, layout.global_nx)
                                 : static_cast<std::size_t>(gi);
      const std::size_t wj = layout.periodic.y
                                 ? wrap(gj, layout.global_ny)
                                 : static_cast<std::size_t>(gj);
      EXPECT_EQ(g(i, j), tagval(wi, wj))
          << "block " << b.id() << " ghost (" << i << "," << j << ")";
    }
  }
}

/// Run `steps` of a periodic 5-point Jacobi sweep on the given block
/// distribution and gather the result on root (a bitwise fingerprint of
/// the whole schedule: halo routing, batching, and update order).
Array2D<double> jacobi_fingerprint(const BlockLayout2D& layout,
                                   const std::vector<int>& owner, int nprocs,
                                   bool batched, int steps) {
  Array2D<double> out;
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    BlockSet<double> u(layout, owner, p.rank());
    BlockSet<double> v(layout, owner, p.rank());
    u.init_from_global(tagval);
    BlockExchangePlan2D plan(
        u, BlockExchangeOptions{false, 0, batched, false, 0.0});
    for (int s = 0; s < steps; ++s) {
      plan.exchange_all(p, u);
      for (std::size_t b = 0; b < u.size(); ++b) {
        const auto& g = u.block(b).grid();
        auto& w = v.block(b).grid();
        mesh::for_interior(g, [&](std::ptrdiff_t i, std::ptrdiff_t j) {
          w(i, j) = 0.25 * (g(i - 1, j) + g(i + 1, j) + g(i, j - 1) +
                            g(i, j + 1));
        });
      }
      std::swap(u, v);
    }
    auto dense = mesh::gather_blocks(p, u, 0);
    if (p.rank() == 0) out = std::move(dense);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Layout and distributions.

TEST(BlockLayout, IndexingRoundTripsAndRangesTileTheDomain) {
  const auto layout = make_layout(11, 7, 3, 2, {false, false});
  EXPECT_EQ(layout.nblocks(), 6);
  std::vector<bool> cell(11 * 7, false);
  for (int bx = 0; bx < layout.nbx; ++bx) {
    for (int by = 0; by < layout.nby; ++by) {
      const int id = layout.id_of(bx, by);
      EXPECT_EQ(layout.bx_of(id), bx);
      EXPECT_EQ(layout.by_of(id), by);
      for (std::size_t i = layout.x_range(bx).lo; i < layout.x_range(bx).hi;
           ++i) {
        for (std::size_t j = layout.y_range(by).lo; j < layout.y_range(by).hi;
             ++j) {
          EXPECT_FALSE(cell[i * 7 + j]) << "cell covered twice";
          cell[i * 7 + j] = true;
        }
      }
    }
  }
  for (const bool c : cell) EXPECT_TRUE(c);
}

TEST(BlockDistribute, ContiguousAndRoundRobinCoverEveryBlockAndRank) {
  for (const int nblocks : {4, 7, 16}) {
    for (const int nranks : {1, 3, 4}) {
      for (const auto& owner :
           {mesh::distribute_blocks_contiguous(nblocks, nranks),
            mesh::distribute_blocks_round_robin(nblocks, nranks)}) {
        ASSERT_EQ(owner.size(), static_cast<std::size_t>(nblocks));
        std::vector<int> per_rank(static_cast<std::size_t>(nranks), 0);
        for (const int r : owner) {
          ASSERT_GE(r, 0);
          ASSERT_LT(r, nranks);
          ++per_rank[static_cast<std::size_t>(r)];
        }
        if (nblocks >= nranks) {
          for (const int c : per_rank) EXPECT_GE(c, 1);
        }
        // Balanced to within one block.
        const auto [lo, hi] =
            std::minmax_element(per_rank.begin(), per_rank.end());
        EXPECT_LE(*hi - *lo, 1);
      }
    }
  }
}

TEST(BlockSet, TracksAllocationAndStorage) {
  const auto layout = make_layout(8, 8, 2, 2, {false, false});
  BlockSet<double> s(layout, mesh::distribute_blocks_contiguous(4, 1), 0,
                     /*allocate_all=*/false);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.allocated_count(), 0u);
  EXPECT_EQ(s.storage_bytes(), 0u);
  s.block(1).allocate();
  EXPECT_EQ(s.allocated_count(), 1u);
  EXPECT_EQ(s.storage_bytes(), 6u * 6u * sizeof(double));
  EXPECT_EQ(s.dense_bytes(), 4u * 6u * 6u * sizeof(double));
  s.block(1).deallocate();
  EXPECT_EQ(s.storage_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Halo correctness.

TEST(BlockHalo, GhostsCorrectAcrossBlocksAndRanksNonPeriodic) {
  const auto layout = make_layout(10, 9, 4, 3, {false, false});
  const auto owner = mesh::distribute_blocks_contiguous(12, 3);
  mpl::spmd_run(3, [&](mpl::Process& p) {
    BlockSet<double> u(layout, owner, p.rank());
    u.init_from_global(tagval);
    BlockExchangePlan2D plan(u);
    plan.exchange_all(p, u);
    for (const auto& b : u) expect_block_ghosts(b, layout, /*corners=*/false);
  });
}

TEST(BlockHalo, GhostsCorrectFullyPeriodicWithCorners) {
  const auto layout = make_layout(10, 9, 4, 3, {true, true});
  const auto owner = mesh::distribute_blocks_round_robin(12, 3);
  mpl::spmd_run(3, [&](mpl::Process& p) {
    BlockSet<double> u(layout, owner, p.rank());
    u.init_from_global(tagval);
    BlockExchangePlan2D plan(
        u, BlockExchangeOptions{/*corners=*/true, 0, true, false, 0.0});
    plan.exchange_all(p, u);
    for (const auto& b : u) expect_block_ghosts(b, layout, /*corners=*/true);
  });
}

TEST(BlockHalo, SingleBlockSelfWrapsPeriodicAxes) {
  const auto layout = make_layout(6, 5, 1, 1, {true, true});
  mpl::spmd_run(1, [&](mpl::Process& p) {
    BlockSet<double> u(layout, {0}, 0);
    u.init_from_global(tagval);
    BlockExchangePlan2D plan(
        u, BlockExchangeOptions{/*corners=*/true, 0, true, false, 0.0});
    EXPECT_EQ(plan.off_rank_message_count(), 0u);
    plan.exchange_all(p, u);
    for (const auto& b : u) expect_block_ghosts(b, layout, /*corners=*/true);
  });
}

TEST(BlockHalo, UnbatchedModeFillsTheSameGhosts) {
  const auto layout = make_layout(10, 9, 4, 3, {true, false});
  const auto owner = mesh::distribute_blocks_contiguous(12, 4);
  mpl::spmd_run(4, [&](mpl::Process& p) {
    BlockSet<double> u(layout, owner, p.rank());
    u.init_from_global(tagval);
    BlockExchangePlan2D plan(
        u, BlockExchangeOptions{false, 0, /*batched=*/false, false, 0.0});
    plan.exchange_all(p, u);
    for (const auto& b : u) expect_block_ghosts(b, layout, /*corners=*/false);
  });
}

// ---------------------------------------------------------------------------
// Message counts.

TEST(BlockPlan, BatchedRoundIsOneMessagePerPeerRank) {
  const auto layout = make_layout(16, 16, 4, 4, {false, false});
  for (const int nprocs : {2, 4}) {
    const auto owner = mesh::distribute_blocks_contiguous(16, nprocs);
    std::size_t planned = 0;
    mpl::TraceSnapshot trace;
    mpl::spmd_collect<int>(
        nprocs,
        [&](mpl::Process& p) {
          BlockSet<double> u(layout, owner, p.rank());
          u.init_from_global(tagval);
          BlockExchangePlan2D plan(u);
          EXPECT_EQ(plan.off_rank_message_count(), plan.peer_count());
          if (p.rank() == 0) planned = plan.off_rank_message_count();
          plan.exchange_all(p, u);
          return static_cast<int>(plan.off_rank_message_count());
        },
        &trace);
    // The traced total of one round is the sum of every rank's plan.
    (void)planned;
    std::size_t total = 0;
    {
      // Re-derive each rank's peer count from the owner map alone.
      for (int r = 0; r < nprocs; ++r) {
        BlockExchangePlan2D plan(layout, owner, r);
        total += plan.off_rank_message_count();
      }
    }
    EXPECT_EQ(trace.messages, total);
  }
}

TEST(BlockPlan, BatchingCoalescesWithoutChangingPayload) {
  const auto layout = make_layout(16, 16, 4, 4, {true, true});
  const auto owner = mesh::distribute_blocks_round_robin(16, 4);
  std::uint64_t msgs[2], bytes[2];
  for (const bool batched : {true, false}) {
    mpl::TraceSnapshot trace;
    mpl::spmd_collect<int>(
        4,
        [&](mpl::Process& p) {
          BlockSet<double> u(layout, owner, p.rank());
          u.init_from_global(tagval);
          BlockExchangePlan2D plan(
              u, BlockExchangeOptions{false, 0, batched, false, 0.0});
          plan.exchange_all(p, u);
          return 0;
        },
        &trace);
    msgs[batched ? 0 : 1] = trace.messages;
    bytes[batched ? 0 : 1] = trace.bytes;
  }
  EXPECT_LT(msgs[0], msgs[1]);
  EXPECT_EQ(bytes[0], bytes[1]);  // same strips + status words, coalesced
}

TEST(BlockPlan, OneBlockPerRankMatchesExchangePlan2D) {
  // Block grid 2x2 over 4 ranks with the identity owner map is exactly the
  // near-square process grid of the single-grid path: same halos, and the
  // batched round sends the same number of messages.
  constexpr std::size_t kN = 12, kM = 10;
  const auto layout = make_layout(kN, kM, 2, 2, {false, false});
  const auto owner = mesh::distribute_blocks_contiguous(4, 4);
  const mpl::CartGrid2D pgrid(2, 2);

  std::vector<std::vector<double>> block_ghosts(4), grid_ghosts(4);
  mpl::TraceSnapshot btrace, gtrace;
  mpl::spmd_collect<int>(
      4,
      [&](mpl::Process& p) {
        BlockSet<double> u(layout, owner, p.rank());
        u.init_from_global(tagval);
        BlockExchangePlan2D plan(u);
        plan.exchange_all(p, u);
        const auto& g = u.block(0).grid();
        auto& out = block_ghosts[static_cast<std::size_t>(p.rank())];
        for (std::ptrdiff_t i = -1; i <= static_cast<std::ptrdiff_t>(g.nx());
             ++i) {
          for (std::ptrdiff_t j = -1; j <= static_cast<std::ptrdiff_t>(g.ny());
               ++j) {
            out.push_back(g(i, j));
          }
        }
        return 0;
      },
      &btrace);
  mpl::spmd_collect<int>(
      4,
      [&](mpl::Process& p) {
        mesh::Grid2D<double> g(kN, kM, pgrid, p.rank(), 1);
        g.init_from_global(tagval);
        mesh::ExchangePlan2D plan(pgrid, p.rank(), g,
                                  mesh::ExchangeOptions2{{false, false},
                                                         /*corners=*/false});
        plan.begin_exchange(p, g);
        plan.end_exchange(p, g);
        auto& out = grid_ghosts[static_cast<std::size_t>(p.rank())];
        for (std::ptrdiff_t i = -1; i <= static_cast<std::ptrdiff_t>(g.nx());
             ++i) {
          for (std::ptrdiff_t j = -1; j <= static_cast<std::ptrdiff_t>(g.ny());
               ++j) {
            out.push_back(g(i, j));
          }
        }
        return 0;
      },
      &gtrace);
  EXPECT_EQ(block_ghosts, grid_ghosts);
  EXPECT_EQ(btrace.messages, gtrace.messages);
  // The block wire format adds one status word per (block, neighbor) pair;
  // at one block per rank that is one word per message.
  EXPECT_EQ(btrace.bytes, gtrace.bytes + btrace.messages * sizeof(std::uint64_t));
}

// ---------------------------------------------------------------------------
// Distribution battery: every block→rank map computes the same field.

TEST(BlockDistributionBattery, AllMapsBitwiseEqualToSingleRankReference) {
  const auto layout = make_layout(22, 18, 4, 4, {true, true});
  constexpr int kSteps = 5;
  const auto reference = jacobi_fingerprint(
      layout, mesh::distribute_blocks_contiguous(16, 1), 1, true, kSteps);
  ASSERT_EQ(reference.rows(), 22u);

  for (const int np : {1, 2, 4, 8}) {
    std::vector<std::vector<int>> maps;
    maps.push_back(mesh::distribute_blocks_contiguous(16, np));  // oversubscribed
    maps.push_back(mesh::distribute_blocks_round_robin(16, np));
    // Deliberately imbalanced: everything on rank 0 except one block on
    // the last rank.
    std::vector<int> lopsided(16, 0);
    lopsided[7] = np - 1;
    maps.push_back(lopsided);
    for (const auto& owner : maps) {
      for (const bool batched : {true, false}) {
        const auto got =
            jacobi_fingerprint(layout, owner, np, batched, kSteps);
        ASSERT_EQ(got.rows(), reference.rows());
        EXPECT_EQ(std::vector<double>(got.flat().begin(), got.flat().end()),
                  std::vector<double>(reference.flat().begin(),
                                      reference.flat().end()))
            << "np=" << np << " batched=" << batched;
      }
    }
  }
}

TEST(BlockDistributionBattery, NonDivisibleBlockCounts) {
  // 3x3 = 9 blocks over 2 and 4 ranks; 23x17 cells over 3x3 blocks: nothing
  // divides anything.
  const auto layout = make_layout(23, 17, 3, 3, {true, false});
  const auto reference = jacobi_fingerprint(
      layout, mesh::distribute_blocks_contiguous(9, 1), 1, true, 4);
  for (const int np : {2, 4}) {
    const auto got = jacobi_fingerprint(
        layout, mesh::distribute_blocks_round_robin(9, np), np, true, 4);
    EXPECT_EQ(std::vector<double>(got.flat().begin(), got.flat().end()),
              std::vector<double>(reference.flat().begin(),
                                  reference.flat().end()))
        << "np=" << np;
  }
}

// ---------------------------------------------------------------------------
// Sparse allocation protocol.

TEST(BlockSparse, HalosFromUnallocatedNeighborsAreZeroFilled) {
  // 3x1 blocks on one rank, only the middle allocated and nonzero: after
  // one round its ghosts (fed by the empty neighbors) must read zero, and
  // the empty neighbors must stay empty (their incoming data is zero).
  const auto layout = make_layout(9, 4, 3, 1, {false, false});
  mpl::spmd_run(1, [&](mpl::Process& p) {
    BlockSet<double> u(layout, {0, 0, 0}, 0, /*allocate_all=*/false);
    u.block(1).allocate();
    auto& g = u.block(1).grid();
    // Nonzero only in the middle column, so the outgoing boundary strips
    // are all-zero and must not wake the neighbors.
    for (std::ptrdiff_t j = 0; j < 4; ++j) g(1, j) = 3.5;
    // Poison the middle block's ghosts to prove the round rewrites them.
    g(-1, 0) = 99.0;
    g(static_cast<std::ptrdiff_t>(g.nx()), 1) = 99.0;
    BlockExchangePlan2D plan(
        u, BlockExchangeOptions{false, 0, true, /*sparse=*/true, 0.0});
    plan.exchange_all(p, u);
    EXPECT_FALSE(u.block(0).allocated());  // zero data does not wake anyone
    EXPECT_FALSE(u.block(2).allocated());
    for (std::ptrdiff_t j = 0; j < 4; ++j) {
      EXPECT_EQ(g(-1, j), 0.0);
      EXPECT_EQ(g(3, j), 0.0);
    }
  });
}

TEST(BlockSparse, NonTrivialStripsWakeTheDownwindBlock) {
  // A front moving +x across 4x1 blocks split over 2 ranks: each round the
  // rightmost nonzero column crosses one block boundary, waking exactly the
  // next block — both the on-rank (0→1) and off-rank (1→2) hops.
  const auto layout = make_layout(12, 3, 4, 1, {false, false});
  const std::vector<int> owner{0, 0, 1, 1};
  mpl::spmd_run(2, [&](mpl::Process& p) {
    BlockSet<double> u(layout, owner, p.rank(), /*allocate_all=*/false);
    if (const int li = u.local_index(0); li >= 0) {
      auto& b = u.block(static_cast<std::size_t>(li));
      b.allocate();
      // Nonzero only in the block's last interior column.
      for (std::ptrdiff_t j = 0; j < 3; ++j) b.grid()(2, j) = 1.0;
    }
    BlockExchangePlan2D plan(
        u, BlockExchangeOptions{false, 0, true, /*sparse=*/true, 0.0});

    const auto allocated = [&](int id) {
      const int li = u.local_index(id);
      return li >= 0 && u.block(static_cast<std::size_t>(li)).allocated();
    };
    const auto global_allocated = [&](int id) {
      return p.allreduce(static_cast<std::uint64_t>(allocated(id) ? 1 : 0),
                         mpl::MaxOp{}) == 1;
    };

    plan.exchange_all(p, u);  // wakes block 1 (on-rank copy)
    EXPECT_TRUE(global_allocated(1));
    EXPECT_FALSE(global_allocated(2));
    EXPECT_FALSE(global_allocated(3));
    // The woken block received the strip into its ghost layer.
    if (const int li = u.local_index(1); li >= 0) {
      auto& b = u.block(static_cast<std::size_t>(li));
      EXPECT_EQ(b.grid()(-1, 1), 1.0);
      // Advance the front into its interior edge so the next round crosses
      // the rank boundary.
      for (std::ptrdiff_t j = 0; j < 3; ++j) b.grid()(2, j) = 2.0;
    }
    plan.exchange_all(p, u);  // wakes block 2 (off-rank message)
    EXPECT_TRUE(global_allocated(2));
    EXPECT_FALSE(global_allocated(3));
    if (const int li = u.local_index(2); li >= 0) {
      EXPECT_EQ(u.block(static_cast<std::size_t>(li)).grid()(-1, 2), 2.0);
    }
  });
}

TEST(BlockSparse, AllocThresholdIgnoresSubThresholdStrips) {
  const auto layout = make_layout(6, 3, 2, 1, {false, false});
  mpl::spmd_run(1, [&](mpl::Process& p) {
    BlockSet<double> u(layout, {0, 0}, 0, /*allocate_all=*/false);
    u.block(0).allocate();
    u.block(0).grid()(2, 1) = 1e-9;  // boundary column, below threshold
    BlockExchangePlan2D plan(
        u, BlockExchangeOptions{false, 0, true, /*sparse=*/true,
                                /*alloc_threshold=*/1e-6});
    plan.exchange_all(p, u);
    EXPECT_FALSE(u.block(1).allocated());
    u.block(0).grid()(2, 1) = 1e-3;  // above threshold
    plan.exchange_all(p, u);
    EXPECT_TRUE(u.block(1).allocated());
  });
}

TEST(BlockSparse, DeallocSweepHonorsPatience) {
  const auto layout = make_layout(8, 4, 2, 1, {false, false});
  BlockSet<double> u(layout, {0, 0}, 0);
  u.block(0).grid().fill(1.0);  // block 1 stays all-zero
  const auto trivial = [](double v) { return v == 0.0; };
  EXPECT_EQ(u.sweep_deallocate(trivial, /*patience=*/2), 0u);  // 1st strike
  EXPECT_EQ(u.sweep_deallocate(trivial, 2), 1u);               // retired
  EXPECT_FALSE(u.block(1).allocated());
  EXPECT_TRUE(u.block(0).allocated());
  // Non-trivial data resets the strike counter.
  u.block(0).grid().fill(0.0);
  EXPECT_EQ(u.sweep_deallocate(trivial, 2), 0u);
  u.block(0).grid()(0, 0) = 5.0;
  EXPECT_EQ(u.sweep_deallocate(trivial, 2), 0u);  // reset by the 5.0
  u.block(0).grid()(0, 0) = 0.0;
  EXPECT_EQ(u.sweep_deallocate(trivial, 2), 0u);  // 1st strike again
  EXPECT_EQ(u.sweep_deallocate(trivial, 2), 1u);
  EXPECT_EQ(u.allocated_count(), 0u);
}

// ---------------------------------------------------------------------------
// Block-decomposed I/O.

TEST(BlockIO, GatherScatterRoundTripDense) {
  const auto layout = make_layout(13, 11, 3, 2, {false, false});
  const auto owner = mesh::distribute_blocks_round_robin(6, 3);
  mpl::spmd_run(3, [&](mpl::Process& p) {
    BlockSet<double> u(layout, owner, p.rank());
    u.init_from_global(tagval);
    const auto dense = mesh::gather_blocks(p, u, 0);
    if (p.rank() == 0) {
      ASSERT_EQ(dense.rows(), 13u);
      ASSERT_EQ(dense.cols(), 11u);
      for (std::size_t i = 0; i < 13; ++i) {
        for (std::size_t j = 0; j < 11; ++j) {
          EXPECT_EQ(dense(i, j), tagval(i, j));
        }
      }
    }
    // Round trip through scatter into a zeroed set.
    BlockSet<double> v(layout, owner, p.rank());
    mesh::scatter_blocks(p, dense, v, 0);
    for (std::size_t b = 0; b < v.size(); ++b) {
      const auto& src = u.block(b).grid();
      const auto& dst = v.block(b).grid();
      mesh::for_interior(src, [&](std::ptrdiff_t i, std::ptrdiff_t j) {
        EXPECT_EQ(dst(i, j), src(i, j));
      });
    }
  });
}

TEST(BlockIO, GatherScatterPreservesSparseAllocation) {
  const auto layout = make_layout(12, 12, 3, 3, {false, false});
  const auto owner = mesh::distribute_blocks_contiguous(9, 2);
  mpl::spmd_run(2, [&](mpl::Process& p) {
    BlockSet<double> u(layout, owner, p.rank(), /*allocate_all=*/false);
    // Allocate only block 4 (the center) with nonzero data.
    if (const int li = u.local_index(4); li >= 0) {
      auto& b = u.block(static_cast<std::size_t>(li));
      b.allocate();
      b.grid().fill(2.25);
    }
    const auto dense = mesh::gather_blocks(p, u, 0);
    if (p.rank() == 0) {
      double sum = 0.0;
      for (const double v : dense.flat()) sum += v;
      EXPECT_EQ(sum, 2.25 * 4 * 4);  // only the center block contributes
    }
    BlockSet<double> v(layout, owner, p.rank(), /*allocate_all=*/false);
    mesh::scatter_blocks(p, dense, v, 0);
    // All-zero windows stay deallocated; the center block materializes.
    const auto count = p.allreduce(
        static_cast<std::uint64_t>(v.allocated_count()), mpl::SumOp{});
    EXPECT_EQ(count, 1u);
    if (const int li = v.local_index(4); li >= 0) {
      const auto& b = v.block(static_cast<std::size_t>(li));
      ASSERT_TRUE(b.allocated());
      EXPECT_EQ(b.grid()(0, 0), 2.25);
    }
  });
}

// ---------------------------------------------------------------------------
// Shape guard.

TEST(BlockPlan, MismatchedBlockSetThrowsTyped) {
  const auto layout = make_layout(8, 8, 2, 2, {false, false});
  const auto other = make_layout(8, 8, 4, 1, {false, false});
  mpl::spmd_run(1, [&](mpl::Process& p) {
    BlockSet<double> u(layout, {0, 0, 0, 0}, 0);
    BlockSet<double> w(other, {0, 0, 0, 0}, 0);
    BlockExchangePlan2D plan(u);
    EXPECT_THROW(plan.begin_exchange_all(p, w), mesh::PlanShapeMismatch);
    // The guard must not have started a round.
    EXPECT_FALSE(plan.in_flight());
    plan.exchange_all(p, u);  // still usable with the right set
  });
}

}  // namespace
