// Tests for the branch-and-bound archetype (the paper's future-work
// "nondeterministic archetype") and its knapsack application: exactness
// against a DP oracle, sequential == parallel optima (the result is
// deterministic even though the search is not), pruning sanity, the
// shared-memory work-stealing driver, and the SPMD driver's combined
// allreduce + frontier-rebalancing rounds.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/knapsack/knapsack.hpp"
#include "support/rng.hpp"

namespace {

using namespace ppa;
using app::KnapsackItem;
using app::KnapsackProblem;

KnapsackProblem random_problem(std::size_t n, int capacity, std::uint64_t seed,
                               std::vector<std::pair<int, double>>* oracle_items) {
  Rng rng(seed);
  KnapsackProblem prob;
  prob.capacity = capacity;
  for (std::size_t i = 0; i < n; ++i) {
    const int w = static_cast<int>(rng.uniform_int(1, 25));
    const double v = rng.uniform(1.0, 40.0);
    prob.items.push_back({static_cast<double>(w), v});
    if (oracle_items != nullptr) oracle_items->emplace_back(w, v);
  }
  return prob;
}

TEST(Knapsack, TinyKnownInstance) {
  // Items (w, v): (2, 3), (3, 4), (4, 5); capacity 5 -> take (2,3)+(3,4)=7.
  KnapsackProblem prob;
  prob.capacity = 5.0;
  prob.items = {{2.0, 3.0}, {3.0, 4.0}, {4.0, 5.0}};
  EXPECT_DOUBLE_EQ(app::knapsack_sequential(prob), 7.0);
  EXPECT_DOUBLE_EQ(app::knapsack_parallel(prob, 3), 7.0);
}

TEST(Knapsack, EmptyAndInfeasible) {
  KnapsackProblem empty;
  empty.capacity = 10.0;
  EXPECT_DOUBLE_EQ(app::knapsack_sequential(empty), 0.0);
  KnapsackProblem heavy;
  heavy.capacity = 1.0;
  heavy.items = {{5.0, 100.0}, {7.0, 200.0}};
  EXPECT_DOUBLE_EQ(app::knapsack_sequential(heavy), 0.0);
  EXPECT_DOUBLE_EQ(app::knapsack_parallel(heavy, 4), 0.0);
}

TEST(Knapsack, AllItemsFit) {
  KnapsackProblem prob;
  prob.capacity = 100.0;
  prob.items = {{2.0, 3.0}, {3.0, 4.0}, {4.0, 5.0}};
  EXPECT_DOUBLE_EQ(app::knapsack_sequential(prob), 12.0);
}

class KnapsackP : public testing::TestWithParam<int> {};

TEST_P(KnapsackP, MatchesDpOracleAndSequential) {
  const int p = GetParam();
  for (std::uint64_t seed : {1u, 7u, 19u}) {
    std::vector<std::pair<int, double>> oracle_items;
    const auto prob = random_problem(22, 60, seed, &oracle_items);
    const double expected = app::knapsack_dp_oracle(oracle_items, 60);
    const double seq = app::knapsack_sequential(prob);
    const double par = app::knapsack_parallel(prob, p);
    EXPECT_NEAR(seq, expected, 1e-9) << "seed " << seed;
    EXPECT_NEAR(par, expected, 1e-9) << "seed " << seed;
    // Sequential and parallel agree exactly: the optimum is deterministic
    // even though the search order is not.
    EXPECT_DOUBLE_EQ(seq, par);
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, KnapsackP, testing::Values(1, 2, 3, 4, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(Knapsack, LargerInstanceStillExact) {
  std::vector<std::pair<int, double>> oracle_items;
  const auto prob = random_problem(40, 120, 42, &oracle_items);
  const double expected = app::knapsack_dp_oracle(oracle_items, 120);
  EXPECT_NEAR(app::knapsack_parallel(prob, 4), expected, 1e-9);
}

TEST(Knapsack, BoundIsAdmissible) {
  // The fractional bound at the root must not exceed the true optimum (in
  // negated space: bound <= -optimum).
  std::vector<std::pair<int, double>> oracle_items;
  const auto prob = random_problem(18, 50, 5, &oracle_items);
  app::KnapsackSpec spec(prob);
  const double root_bound = spec.bound(app::KnapsackSpec::Node{});
  const double optimum = app::knapsack_dp_oracle(oracle_items, 50);
  EXPECT_LE(root_bound, -optimum + 1e-9);
}

class KnapsackTasksP : public testing::TestWithParam<int> {};

TEST_P(KnapsackTasksP, SharedMemoryDriverMatchesOracleAndSequential) {
  const int workers = GetParam();
  for (std::uint64_t seed : {2u, 11u, 23u}) {
    std::vector<std::pair<int, double>> oracle_items;
    const auto prob = random_problem(22, 60, seed, &oracle_items);
    const double expected = app::knapsack_dp_oracle(oracle_items, 60);
    const double seq = app::knapsack_sequential(prob);
    const double tasks = app::knapsack_tasks(prob, workers);
    EXPECT_NEAR(tasks, expected, 1e-9) << "seed " << seed;
    // The optimum is deterministic even though the shared-memory search
    // order (stealing, incumbent races) is not.
    EXPECT_DOUBLE_EQ(tasks, seq) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, KnapsackTasksP, testing::Values(1, 2, 4, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "W";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(KnapsackTasks, LargerInstanceStillExact) {
  std::vector<std::pair<int, double>> oracle_items;
  const auto prob = random_problem(40, 120, 42, &oracle_items);
  const double expected = app::knapsack_dp_oracle(oracle_items, 120);
  EXPECT_NEAR(app::knapsack_tasks(prob, 4), expected, 1e-9);
}

TEST(KnapsackTasks, TrivialInstances) {
  KnapsackProblem empty;
  empty.capacity = 10.0;
  EXPECT_DOUBLE_EQ(app::knapsack_tasks(empty, 4), 0.0);
  KnapsackProblem heavy;
  heavy.capacity = 1.0;
  heavy.items = {{5.0, 100.0}, {7.0, 200.0}};
  EXPECT_DOUBLE_EQ(app::knapsack_tasks(heavy, 4), 0.0);
}

// A synthetic minimization tree engineered to skew the SPMD decomposition:
// the root fans out into `fanout` children; child 0 roots a full binary
// subtree of depth `deep_depth` (the optimum, -3, hides at its leftmost
// leaf, and depth-first expansion reaches it last), every other child is a
// two-node stub that drains in one round. Block-cyclic seeding therefore
// hands all the real work to the rank that receives child 0, leaving the
// other ranks' pools empty after the first round — the exact situation the
// rebalancing rounds exist for.
struct SkewSpec {
  struct Node {
    std::uint64_t path = 0;
    std::int32_t depth = 0;
    std::int32_t kind = 0;  // 0 root, 1 stub, 2 deep, 3 stub leaf
  };
  using node_type = Node;
  int fanout = 16;
  int deep_depth = 12;

  [[nodiscard]] bool is_leaf(const Node& n) const {
    return n.kind == 3 || (n.kind == 2 && n.depth == deep_depth);
  }
  [[nodiscard]] double leaf_value(const Node& n) const {
    if (n.kind == 3) return 0.0;
    return n.path == 0 ? -3.0 : -1.0;
  }
  [[nodiscard]] double bound(const Node& n) const {
    return is_leaf(n) ? leaf_value(n) : -3.0;
  }
  [[nodiscard]] std::vector<Node> branch(const Node& n) const {
    std::vector<Node> children;
    if (n.kind == 0) {
      children.push_back({0, 0, 2});
      for (int i = 1; i < fanout; ++i) {
        children.push_back({static_cast<std::uint64_t>(i), 0, 1});
      }
    } else if (n.kind == 1) {
      children.push_back({n.path, 0, 3});
    } else {
      children.push_back({n.path * 2, n.depth + 1, 2});
      children.push_back({n.path * 2 + 1, n.depth + 1, 2});
    }
    return children;
  }
};

static_assert(bnb::Spec<SkewSpec>);
static_assert(mpl::Wire<SkewSpec::Node>);

TEST(BnbRebalance, DrainedRanksAreRefilledAndResultIsExact) {
  constexpr int kProcs = 4;
  SkewSpec spec;
  const double expected = bnb::solve_sequential(spec, SkewSpec::Node{});
  EXPECT_DOUBLE_EQ(expected, -3.0);

  std::vector<bnb::ProcessStats> stats(kProcs);
  mpl::TraceSnapshot trace;
  const auto results = mpl::spmd_collect<double>(
      kProcs,
      [&](mpl::Process& p) {
        SkewSpec local;
        return bnb::solve_process(local, p, SkewSpec::Node{}, /*chunk=*/8,
                                  /*seed_factor=*/4,
                                  &stats[static_cast<std::size_t>(p.rank())]);
      },
      &trace);
  for (const double r : results) EXPECT_DOUBLE_EQ(r, expected);

  // The skewed decomposition must have triggered rebalancing rounds, and
  // every rank must have executed the identical collective sequence.
  EXPECT_GT(stats[0].rebalances, 0u);
  for (int r = 1; r < kProcs; ++r) {
    EXPECT_EQ(stats[static_cast<std::size_t>(r)].rounds, stats[0].rounds);
    EXPECT_EQ(stats[static_cast<std::size_t>(r)].rebalances, stats[0].rebalances);
  }

  // The satellite's folded collective: ONE allreduce per round (not two),
  // one allgather per rebalancing round, nothing else.
  EXPECT_EQ(trace.op(mpl::Op::kAllreduce), stats[0].rounds * kProcs);
  EXPECT_EQ(trace.op(mpl::Op::kAllgather), stats[0].rebalances * kProcs);
  EXPECT_EQ(trace.op(mpl::Op::kAlltoall), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kGather), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kBarrier), 0u);
}

TEST(BnbRebalance, SolveTasksHandlesTheSkewedTreeToo) {
  SkewSpec spec;
  EXPECT_DOUBLE_EQ(bnb::solve_tasks(spec, SkewSpec::Node{}, 4), -3.0);
}

// A spec that throws from branch() partway into the search: solve_tasks
// must abort (drain, not hang) and rethrow rather than spin forever on the
// thrower's lost nodes.
struct ThrowingSpec {
  using node_type = SkewSpec::Node;
  SkewSpec inner;
  std::shared_ptr<std::atomic<int>> branches = new_counter();

  static std::shared_ptr<std::atomic<int>> new_counter() {
    return std::make_shared<std::atomic<int>>(0);
  }
  [[nodiscard]] bool is_leaf(const node_type& n) const { return inner.is_leaf(n); }
  [[nodiscard]] double leaf_value(const node_type& n) const {
    return inner.leaf_value(n);
  }
  [[nodiscard]] double bound(const node_type& n) const { return inner.bound(n); }
  [[nodiscard]] std::vector<node_type> branch(const node_type& n) const {
    if (branches->fetch_add(1) == 200) throw std::runtime_error("spec failure");
    return inner.branch(n);
  }
};
static_assert(bnb::Spec<ThrowingSpec>);

TEST(BnbRebalance, SolveTasksRethrowsSpecExceptionsInsteadOfHanging) {
  ThrowingSpec spec;
  EXPECT_THROW((void)bnb::solve_tasks(spec, SkewSpec::Node{}, 4, /*chunk=*/8),
               std::runtime_error);
}

TEST(Knapsack, CommunicationIsAllreduceRoundsOnly) {
  std::vector<std::pair<int, double>> oracle_items;
  const auto prob = random_problem(20, 55, 9, &oracle_items);
  mpl::TraceSnapshot trace;
  mpl::spmd_collect<double>(
      4,
      [&](mpl::Process& p) {
        app::KnapsackSpec spec(prob);
        return bnb::solve_process(spec, p, app::KnapsackSpec::Node{});
      },
      &trace);
  EXPECT_GT(trace.op(mpl::Op::kAllreduce), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kAlltoall), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kGather), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kBarrier), 0u);
}

}  // namespace
