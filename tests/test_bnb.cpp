// Tests for the branch-and-bound archetype (the paper's future-work
// "nondeterministic archetype") and its knapsack application: exactness
// against a DP oracle, sequential == parallel optima (the result is
// deterministic even though the search is not), and pruning sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "apps/knapsack/knapsack.hpp"
#include "support/rng.hpp"

namespace {

using namespace ppa;
using app::KnapsackItem;
using app::KnapsackProblem;

KnapsackProblem random_problem(std::size_t n, int capacity, std::uint64_t seed,
                               std::vector<std::pair<int, double>>* oracle_items) {
  Rng rng(seed);
  KnapsackProblem prob;
  prob.capacity = capacity;
  for (std::size_t i = 0; i < n; ++i) {
    const int w = static_cast<int>(rng.uniform_int(1, 25));
    const double v = rng.uniform(1.0, 40.0);
    prob.items.push_back({static_cast<double>(w), v});
    if (oracle_items != nullptr) oracle_items->emplace_back(w, v);
  }
  return prob;
}

TEST(Knapsack, TinyKnownInstance) {
  // Items (w, v): (2, 3), (3, 4), (4, 5); capacity 5 -> take (2,3)+(3,4)=7.
  KnapsackProblem prob;
  prob.capacity = 5.0;
  prob.items = {{2.0, 3.0}, {3.0, 4.0}, {4.0, 5.0}};
  EXPECT_DOUBLE_EQ(app::knapsack_sequential(prob), 7.0);
  EXPECT_DOUBLE_EQ(app::knapsack_parallel(prob, 3), 7.0);
}

TEST(Knapsack, EmptyAndInfeasible) {
  KnapsackProblem empty;
  empty.capacity = 10.0;
  EXPECT_DOUBLE_EQ(app::knapsack_sequential(empty), 0.0);
  KnapsackProblem heavy;
  heavy.capacity = 1.0;
  heavy.items = {{5.0, 100.0}, {7.0, 200.0}};
  EXPECT_DOUBLE_EQ(app::knapsack_sequential(heavy), 0.0);
  EXPECT_DOUBLE_EQ(app::knapsack_parallel(heavy, 4), 0.0);
}

TEST(Knapsack, AllItemsFit) {
  KnapsackProblem prob;
  prob.capacity = 100.0;
  prob.items = {{2.0, 3.0}, {3.0, 4.0}, {4.0, 5.0}};
  EXPECT_DOUBLE_EQ(app::knapsack_sequential(prob), 12.0);
}

class KnapsackP : public testing::TestWithParam<int> {};

TEST_P(KnapsackP, MatchesDpOracleAndSequential) {
  const int p = GetParam();
  for (std::uint64_t seed : {1u, 7u, 19u}) {
    std::vector<std::pair<int, double>> oracle_items;
    const auto prob = random_problem(22, 60, seed, &oracle_items);
    const double expected = app::knapsack_dp_oracle(oracle_items, 60);
    const double seq = app::knapsack_sequential(prob);
    const double par = app::knapsack_parallel(prob, p);
    EXPECT_NEAR(seq, expected, 1e-9) << "seed " << seed;
    EXPECT_NEAR(par, expected, 1e-9) << "seed " << seed;
    // Sequential and parallel agree exactly: the optimum is deterministic
    // even though the search order is not.
    EXPECT_DOUBLE_EQ(seq, par);
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, KnapsackP, testing::Values(1, 2, 3, 4, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(Knapsack, LargerInstanceStillExact) {
  std::vector<std::pair<int, double>> oracle_items;
  const auto prob = random_problem(40, 120, 42, &oracle_items);
  const double expected = app::knapsack_dp_oracle(oracle_items, 120);
  EXPECT_NEAR(app::knapsack_parallel(prob, 4), expected, 1e-9);
}

TEST(Knapsack, BoundIsAdmissible) {
  // The fractional bound at the root must not exceed the true optimum (in
  // negated space: bound <= -optimum).
  std::vector<std::pair<int, double>> oracle_items;
  const auto prob = random_problem(18, 50, 5, &oracle_items);
  app::KnapsackSpec spec(prob);
  const double root_bound = spec.bound(app::KnapsackSpec::Node{});
  const double optimum = app::knapsack_dp_oracle(oracle_items, 50);
  EXPECT_LE(root_bound, -optimum + 1e-9);
}

TEST(Knapsack, CommunicationIsAllreduceRoundsOnly) {
  std::vector<std::pair<int, double>> oracle_items;
  const auto prob = random_problem(20, 55, 9, &oracle_items);
  mpl::TraceSnapshot trace;
  mpl::spmd_collect<double>(
      4,
      [&](mpl::Process& p) {
        app::KnapsackSpec spec(prob);
        return bnb::solve_process(spec, p, app::KnapsackSpec::Node{});
      },
      &trace);
  EXPECT_GT(trace.op(mpl::Op::kAllreduce), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kAlltoall), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kGather), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kBarrier), 0u);
}

}  // namespace
