// Collective-operation tests, parameterized over world size (including
// non-power-of-two sizes, which exercise the reduce+broadcast fallback in
// allreduce). Each collective is validated against a sequential oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mpl/process.hpp"
#include "mpl/spmd.hpp"

namespace {

using namespace ppa::mpl;

class CollectivesP : public testing::TestWithParam<int> {
 protected:
  [[nodiscard]] int P() const { return GetParam(); }
};

TEST_P(CollectivesP, BroadcastFromEveryRoot) {
  const int p = P();
  for (int root = 0; root < p; ++root) {
    const auto results = spmd_collect<std::vector<int>>(p, [root](Process& proc) {
      std::vector<int> data;
      if (proc.rank() == root) data = {root, root + 1, root + 2};
      proc.broadcast(data, root);
      return data;
    });
    for (const auto& r : results) {
      EXPECT_EQ(r, (std::vector<int>{root, root + 1, root + 2}));
    }
  }
}

TEST_P(CollectivesP, BroadcastValue) {
  const int p = P();
  const auto results = spmd_collect<double>(p, [](Process& proc) {
    return proc.broadcast_value(proc.rank() == 0 ? 3.5 : -1.0, 0);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 3.5);
}

TEST_P(CollectivesP, GatherConcatenatesInRankOrder) {
  const int p = P();
  const auto results = spmd_collect<std::vector<int>>(p, [](Process& proc) {
    // Rank r contributes r+1 copies of r (ragged sizes = gatherv semantics).
    const std::vector<int> mine(static_cast<std::size_t>(proc.rank() + 1),
                                proc.rank());
    return proc.gather(std::span<const int>(mine), 0);
  });
  std::vector<int> expected;
  for (int r = 0; r < p; ++r)
    expected.insert(expected.end(), static_cast<std::size_t>(r + 1), r);
  EXPECT_EQ(results[0], expected);
  for (int r = 1; r < p; ++r) EXPECT_TRUE(results[static_cast<std::size_t>(r)].empty());
}

TEST_P(CollectivesP, GatherToNonZeroRoot) {
  const int p = P();
  const int root = p - 1;
  const auto results = spmd_collect<std::vector<int>>(p, [root](Process& proc) {
    const std::vector<int> mine{proc.rank() * 2};
    return proc.gather(std::span<const int>(mine), root);
  });
  std::vector<int> expected;
  for (int r = 0; r < p; ++r) expected.push_back(r * 2);
  EXPECT_EQ(results[static_cast<std::size_t>(root)], expected);
}

TEST_P(CollectivesP, AllgatherEveryRankSeesAll) {
  const int p = P();
  const auto results = spmd_collect<std::vector<int>>(p, [](Process& proc) {
    const std::vector<int> mine{proc.rank() + 7};
    return proc.allgather(std::span<const int>(mine));
  });
  std::vector<int> expected;
  for (int r = 0; r < p; ++r) expected.push_back(r + 7);
  for (const auto& r : results) EXPECT_EQ(r, expected);
}

TEST_P(CollectivesP, AllgatherPartsRagged) {
  const int p = P();
  const auto results =
      spmd_collect<std::size_t>(p, [](Process& proc) {
        const std::vector<char> mine(static_cast<std::size_t>(proc.rank()), 'x');
        const auto parts = proc.allgather_parts(std::span<const char>(mine));
        std::size_t total = 0;
        for (int r = 0; r < proc.size(); ++r) {
          EXPECT_EQ(parts[static_cast<std::size_t>(r)].size(),
                    static_cast<std::size_t>(r));
          total += parts[static_cast<std::size_t>(r)].size();
        }
        return total;
      });
  const auto expected = static_cast<std::size_t>(p * (p - 1) / 2);
  for (auto t : results) EXPECT_EQ(t, expected);
}

TEST_P(CollectivesP, ScatterDistributesParts) {
  const int p = P();
  const auto results = spmd_collect<std::vector<int>>(p, [p](Process& proc) {
    std::vector<std::vector<int>> parts;
    if (proc.rank() == 0) {
      for (int r = 0; r < p; ++r) parts.push_back({r * 100, r * 100 + 1});
    }
    return proc.scatter(parts, 0);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)],
              (std::vector<int>{r * 100, r * 100 + 1}));
  }
}

TEST_P(CollectivesP, ScatterFromNonZeroRoot) {
  const int p = P();
  const int root = p - 1;
  const auto results = spmd_collect<std::vector<int>>(p, [p, root](Process& proc) {
    std::vector<std::vector<int>> parts;
    if (proc.rank() == root) {
      for (int r = 0; r < p; ++r) parts.push_back({r * 7, r * 7 + 1});
    }
    return proc.scatter(parts, root);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)],
              (std::vector<int>{r * 7, r * 7 + 1}));
  }
}

TEST_P(CollectivesP, ScatterRaggedParts) {
  const int p = P();
  const int root = p / 2;
  const auto results = spmd_collect<std::vector<int>>(p, [p, root](Process& proc) {
    std::vector<std::vector<int>> parts;
    if (proc.rank() == root) {
      // Rank r gets r elements (rank 0 an empty part).
      for (int r = 0; r < p; ++r) {
        parts.emplace_back(static_cast<std::size_t>(r), r * 1000);
      }
    }
    return proc.scatter(parts, root);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)],
              std::vector<int>(static_cast<std::size_t>(r), r * 1000));
  }
}

TEST_P(CollectivesP, ScatterLargePartsRoundtrip) {
  const int p = P();
  const auto results = spmd_collect<long>(p, [p](Process& proc) {
    std::vector<std::vector<long>> parts;
    if (proc.rank() == 0) {
      for (int r = 0; r < p; ++r) {
        parts.emplace_back(static_cast<std::size_t>(1000 + r), r);
      }
    }
    const auto mine = proc.scatter(parts, 0);
    EXPECT_EQ(mine.size(), static_cast<std::size_t>(1000 + proc.rank()));
    long acc = 0;
    for (const long v : mine) acc += v;
    return acc;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)],
              static_cast<long>(1000 + r) * r);
  }
}

TEST_P(CollectivesP, ReduceSumMatchesOracle) {
  const int p = P();
  const auto results = spmd_collect<long>(p, [](Process& proc) {
    return proc.reduce(static_cast<long>(proc.rank() + 1), SumOp{}, 0);
  });
  EXPECT_EQ(results[0], static_cast<long>(p) * (p + 1) / 2);
}

TEST_P(CollectivesP, ReduceMaxAtNonZeroRoot) {
  const int p = P();
  const int root = p / 2;
  const auto results = spmd_collect<int>(p, [root](Process& proc) {
    // Values chosen so the max is owned by an arbitrary middle rank.
    const int v = 100 - (proc.rank() - root) * (proc.rank() - root);
    return proc.reduce(v, MaxOp{}, root);
  });
  EXPECT_EQ(results[static_cast<std::size_t>(root)], 100);
}

TEST_P(CollectivesP, AllreduceSum) {
  const int p = P();
  const auto results = spmd_collect<long>(p, [](Process& proc) {
    return proc.allreduce(static_cast<long>(proc.rank() + 1), SumOp{});
  });
  for (long r : results) EXPECT_EQ(r, static_cast<long>(p) * (p + 1) / 2);
}

TEST_P(CollectivesP, AllreduceMaxOfDoubles) {
  const int p = P();
  const auto results = spmd_collect<double>(p, [](Process& proc) {
    return proc.allreduce(static_cast<double>(proc.rank()) * 1.5, MaxOp{});
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 1.5 * (p - 1));
}

TEST_P(CollectivesP, AllreduceVecElementwise) {
  const int p = P();
  const auto results = spmd_collect<std::vector<int>>(p, [](Process& proc) {
    const std::vector<int> mine{proc.rank(), 1, -proc.rank()};
    return proc.allreduce_vec(std::span<const int>(mine), SumOp{});
  });
  const int sum = p * (p - 1) / 2;
  for (const auto& r : results) EXPECT_EQ(r, (std::vector<int>{sum, p, -sum}));
}

TEST_P(CollectivesP, AlltoallPersonalizedExchange) {
  const int p = P();
  const auto results =
      spmd_collect<std::vector<int>>(p, [p](Process& proc) {
        // parts[j] = {rank*1000 + j}: rank i's message to rank j.
        std::vector<std::vector<int>> parts;
        for (int j = 0; j < p; ++j) parts.push_back({proc.rank() * 1000 + j});
        const auto got = proc.alltoall(std::move(parts));
        std::vector<int> flat;
        for (const auto& g : got) flat.insert(flat.end(), g.begin(), g.end());
        return flat;
      });
  for (int r = 0; r < p; ++r) {
    std::vector<int> expected;
    for (int src = 0; src < p; ++src) expected.push_back(src * 1000 + r);
    EXPECT_EQ(results[static_cast<std::size_t>(r)], expected);
  }
}

TEST_P(CollectivesP, AlltoallWithEmptyParts) {
  const int p = P();
  // Only even ranks send anything; message sizes vary.
  const auto results = spmd_collect<std::size_t>(p, [p](Process& proc) {
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(p));
    if (proc.rank() % 2 == 0) {
      for (int j = 0; j < p; ++j)
        parts[static_cast<std::size_t>(j)].assign(static_cast<std::size_t>(j), 1);
    }
    const auto got = proc.alltoall(std::move(parts));
    std::size_t total = 0;
    for (const auto& g : got) total += g.size();
    return total;
  });
  for (int r = 0; r < p; ++r) {
    const std::size_t senders = static_cast<std::size_t>((p + 1) / 2);
    EXPECT_EQ(results[static_cast<std::size_t>(r)],
              senders * static_cast<std::size_t>(r));
  }
}

TEST_P(CollectivesP, ExscanPrefixSums) {
  const int p = P();
  const auto results = spmd_collect<int>(p, [](Process& proc) {
    return proc.exscan(proc.rank() + 1, SumOp{}, 0);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], r * (r + 1) / 2);
  }
}

TEST_P(CollectivesP, ReduceCountsTraceOps) {
  const int p = P();
  TraceSnapshot trace;
  spmd_collect<int>(
      p, [](Process& proc) { return proc.allreduce(proc.rank(), SumOp{}); },
      &trace);
  EXPECT_EQ(trace.op(Op::kAllreduce), static_cast<std::uint64_t>(p));
}

TEST_P(CollectivesP, AlltoallMessageCountIsPTimesPMinus1) {
  const int p = P();
  TraceSnapshot trace;
  spmd_collect<int>(
      p,
      [p](Process& proc) {
        std::vector<std::vector<int>> parts(static_cast<std::size_t>(p),
                                            std::vector<int>{proc.rank()});
        proc.alltoall(std::move(parts));
        return 0;
      },
      &trace);
  // "every process p sending to every other process q": exactly P*(P-1)
  // point-to-point messages, self-part never crossing the wire.
  EXPECT_EQ(trace.messages, static_cast<std::uint64_t>(p) * (p - 1));
}

TEST_P(CollectivesP, BroadcastMessageCountIsPMinus1) {
  const int p = P();
  TraceSnapshot trace;
  spmd_collect<int>(
      p,
      [](Process& proc) {
        std::vector<int> data(16, proc.rank());
        proc.broadcast(data, 0);
        return data.front();
      },
      &trace);
  // A binomial broadcast delivers to P-1 receivers with exactly P-1 messages.
  EXPECT_EQ(trace.messages, static_cast<std::uint64_t>(p - 1));
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectivesP,
                         testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

// ---------------------------------------------- abort during collectives --
//
// When one rank fails while the others are blocked inside a collective, the
// abort must release every peer with WorldAborted (no wedged rank, no lost
// wakeup in the tree/ring recv chains) and the submitter must see the
// victim's root-cause exception, not a secondary WorldAborted.

/// Run `op(proc)` on every rank except `victim`, which sleeps until its
/// peers are blocked inside the collective and then throws. Returns only
/// after asserting all P-1 peers were released with WorldAborted.
template <typename Collective>
void expect_abort_releases_peers(int p, int victim, Collective&& op) {
  std::atomic<int> released{0};
  EXPECT_THROW(
      spmd_run_cold(p,
                    [&](Process& proc) {
                      if (proc.rank() == victim) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(20));
                        throw std::runtime_error("victim failure");
                      }
                      try {
                        op(proc);
                      } catch (const WorldAborted&) {
                        released.fetch_add(1);
                        throw;
                      }
                    }),
      std::runtime_error);
  EXPECT_EQ(released.load(), p - 1)
      << "p=" << p << " victim=" << victim
      << ": every surviving rank must be released with WorldAborted";
}

class CollectiveAbortP : public testing::TestWithParam<int> {
 protected:
  [[nodiscard]] int P() const { return GetParam(); }
};

TEST_P(CollectiveAbortP, BroadcastReleasesBlockedRanks) {
  // The victim must be the root: a live root completes its sends and only
  // the subtree below a dead rank would block. Cover root 0 and a non-zero
  // root (the tree is rotated around the root rank).
  for (const int root : {0, P() - 1}) {
    expect_abort_releases_peers(P(), root, [root](Process& proc) {
      std::vector<int> data;
      proc.broadcast(data, root);
    });
  }
}

TEST_P(CollectiveAbortP, ScatterReleasesBlockedRanks) {
  for (const int root : {0, P() - 1}) {
    expect_abort_releases_peers(P(), root, [root](Process& proc) {
      (void)proc.scatter(std::vector<std::vector<int>>{}, root);
    });
  }
}

TEST_P(CollectiveAbortP, AllreduceReleasesBlockedRanks) {
  // Rootless: any victim blocks everyone (the result needs every input).
  // Cover both ends of the rank range.
  for (const int victim : {0, P() - 1}) {
    expect_abort_releases_peers(P(), victim, [](Process& proc) {
      (void)proc.allreduce(proc.rank(), SumOp{});
    });
  }
}

TEST_P(CollectiveAbortP, AllgatherReleasesBlockedRanks) {
  for (const int victim : {0, P() - 1}) {
    expect_abort_releases_peers(P(), victim, [](Process& proc) {
      (void)proc.allgather_value(proc.rank());
    });
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveAbortP,
                         testing::Values(2, 4, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           return "P" + std::to_string(info.param);
                         });

}  // namespace
