// Tests for the typed composition layer (core/compose.hpp): driver
// equivalence of composed graphs (sequential vs threaded vs scheduler-
// backed) including hosted SPMD stages at np in {1,2,4,8}, ordered and
// unordered farms hosting engine jobs, shape rejection with typed
// GraphShapeError at graph-build time, graph-anchored deadline plumbing
// (JobOptions::anchor), and failure isolation — a failing hosted job fails
// only its graph run, never the scheduler serving it.
//
// PPA_COMPOSE_SMOKE=1 (the TSan CI leg) shrinks the battery: np in {1,2}
// and fewer stream items, same assertions.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <complex>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/fft2d/fft2d.hpp"
#include "apps/poisson/poisson.hpp"
#include "core/compose.hpp"
#include "mpl/engine.hpp"
#include "mpl/scheduler.hpp"
#include "support/ndarray.hpp"

namespace {

using namespace ppa;
using algo::Complex;

bool smoke_mode() {
  const char* v = std::getenv("PPA_COMPOSE_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::vector<int> battery_nps() {
  if (smoke_mode()) return {1, 2};
  return {1, 2, 4, 8};
}

long battery_items() { return smoke_mode() ? 2 : 3; }

/// A counting source: emits 0..n-1.
auto counting_source(long n) {
  long next = 0;
  return compose::source([next, n]() mutable -> std::optional<long> {
    return next < n ? std::optional<long>(next++) : std::nullopt;
  });
}

std::shared_ptr<mpl::Scheduler> make_scheduler(int width) {
  return std::make_shared<mpl::Scheduler>(std::make_shared<mpl::Engine>(width));
}

// ---------------------------------------------------------- plain graphs --

TEST(Compose, PlainGraphMatchesPipelineSemantics) {
  const auto make = [](std::vector<long>& out) {
    return counting_source(200) |
           compose::stage([](long v) { return v * 3; }) |
           compose::farm(3, [] { return [](long v) { return v + 1; }; },
                         compose::ordered) |
           compose::sink([&out](long v) { out.push_back(v); });
  };
  std::vector<long> seq_out, thr_out;
  auto g1 = make(seq_out);
  g1.run_sequential();
  auto g2 = make(thr_out);
  compose::Config cfg;
  cfg.queue_capacity = 16;
  cfg.batch = 4;
  (void)g2.run_threaded(cfg);
  ASSERT_EQ(seq_out.size(), 200u);
  EXPECT_EQ(thr_out, seq_out);
}

TEST(Compose, SourceDirectlyIntoSink) {
  long sum = 0;
  auto g = counting_source(100) | compose::sink([&sum](long v) { sum += v; });
  g.run_sequential();
  EXPECT_EQ(sum, 4950);
}

TEST(Compose, NodeMetadataAndLabels) {
  auto g = counting_source(1) |
           compose::stage([](long v) { return v; }) |
           compose::engine_job(4, [](mpl::Process&, const long& v) { return v; }) |
           compose::engine_farm(3, 2,
                                [](mpl::Process&, const long& v) { return v; },
                                compose::unordered) |
           compose::sink([](long) {});
  const auto& meta = g.node_meta();
  ASSERT_EQ(meta.size(), 5u);
  EXPECT_EQ(g.hosted_width(), 4);
  EXPECT_EQ(meta[2].hosted_np, 4);
  EXPECT_EQ(meta[3].hosted_np, 2);
  EXPECT_EQ(meta[3].replicas, 3);
  EXPECT_EQ(g.node_label(0), "source");
  EXPECT_EQ(g.node_label(1), "stage#1");
  EXPECT_EQ(g.node_label(2), "hosted#2 (np=4)");
  EXPECT_EQ(g.node_label(3), "hosted-farm#3 (unordered, np=2)");
  EXPECT_EQ(g.node_label(4), "sink");
}

// --------------------------------------------------- hosted-stage drivers --

/// Hosted body: np-wide sum of (item + rank) via allreduce — exercises real
/// collective communication inside the hosted job; rank 0's return is the
/// closed form np*v + np*(np-1)/2.
long hosted_ranksum(mpl::Process& p, const long& v) {
  const long mine = v + p.rank();
  return p.allreduce(mine, [](long a, long b) { return a + b; });
}

TEST(Compose, HostedStageRunsNpWideOnEveryDriver) {
  for (const int np : battery_nps()) {
    const long n = 20;
    const auto expect_item = [np](long v) {
      return np * v + static_cast<long>(np) * (np - 1) / 2;
    };
    const auto make = [&](std::vector<long>& out) {
      return counting_source(n) | compose::engine_job(np, hosted_ranksum) |
             compose::sink([&out](long v) { out.push_back(v); });
    };
    std::vector<long> seq_out, thr_out, sched_out;
    auto g1 = make(seq_out);
    g1.run_sequential();
    auto g2 = make(thr_out);
    (void)g2.run_threaded();
    auto sched = make_scheduler(std::max(np, 2));
    auto g3 = make(sched_out);
    (void)g3.run_scheduler(*sched);
    ASSERT_EQ(seq_out.size(), static_cast<std::size_t>(n)) << "np=" << np;
    for (long v = 0; v < n; ++v) {
      EXPECT_EQ(seq_out[static_cast<std::size_t>(v)], expect_item(v));
    }
    EXPECT_EQ(thr_out, seq_out) << "np=" << np;
    EXPECT_EQ(sched_out, seq_out) << "np=" << np;
  }
}

TEST(Compose, OrderedEngineFarmKeepsSequenceEveryDriver) {
  const int np = smoke_mode() ? 2 : 3;
  const long n = 40;
  const auto make = [&](std::vector<long>& out) {
    return counting_source(n) |
           compose::engine_farm(3, np, hosted_ranksum, compose::ordered) |
           compose::sink([&out](long v) { out.push_back(v); });
  };
  std::vector<long> seq_out, thr_out, sched_out;
  auto g1 = make(seq_out);
  g1.run_sequential();
  auto g2 = make(thr_out);
  (void)g2.run_threaded();
  auto sched = make_scheduler(2 * np);  // two hosted jobs side by side
  auto g3 = make(sched_out);
  (void)g3.run_scheduler(*sched);
  ASSERT_EQ(seq_out.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(thr_out, seq_out);   // ordered farm: exact sequence match
  EXPECT_EQ(sched_out, seq_out);
}

TEST(Compose, UnorderedEngineFarmIsAPermutationEveryDriver) {
  const int np = 2;
  const long n = 30;
  const auto make = [&](std::vector<long>& out) {
    return counting_source(n) |
           compose::engine_farm(4, np, hosted_ranksum, compose::unordered) |
           compose::sink([&out](long v) { out.push_back(v); });
  };
  std::vector<long> seq_out, thr_out, sched_out;
  auto g1 = make(seq_out);
  g1.run_sequential();
  auto g2 = make(thr_out);
  (void)g2.run_threaded();
  auto sched = make_scheduler(4);
  auto g3 = make(sched_out);
  (void)g3.run_scheduler(*sched);
  std::sort(seq_out.begin(), seq_out.end());
  std::sort(thr_out.begin(), thr_out.end());
  std::sort(sched_out.begin(), sched_out.end());
  EXPECT_EQ(thr_out, seq_out);   // same multiset, any order
  EXPECT_EQ(sched_out, seq_out);
}

// ------------------------------------------- flagship: ingest→poisson→fft --

/// One ingest item of the flagship graph: a Poisson problem whose interior
/// (16x16, a power of two) is then spectrally analyzed. nx=ny=18 keeps the
/// solves fast while still exercising the real solver.
app::PoissonProblem flagship_problem(long idx) {
  app::PoissonProblem prob;
  prob.nx = 18;
  prob.ny = 18;
  prob.tolerance = 1e-3;
  const double a = 1.0 + 0.25 * static_cast<double>(idx);
  prob.f = [a](double x, double y) { return a * (x - y); };
  prob.g = [a](double x, double y) { return a * x * y; };
  return prob;
}

/// Interior of the converged field as a complex grid (fft-ready).
Array2D<Complex> interior_as_complex(const Array2D<double>& u) {
  Array2D<Complex> a(u.rows() - 2, u.cols() - 2);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = Complex(u(i + 1, j + 1), 0.0);
    }
  }
  return a;
}

/// The hand-wired sequential reference: poisson_v1 + fft2d_v1, no graph.
std::vector<Array2D<Complex>> flagship_reference(long items) {
  std::vector<Array2D<Complex>> out;
  for (long i = 0; i < items; ++i) {
    auto solved = app::poisson_v1(flagship_problem(i));
    auto spectrum = interior_as_complex(solved.u);
    app::fft2d_v1(spectrum, seq);
    out.push_back(std::move(spectrum));
  }
  return out;
}

TEST(Compose, FlagshipGraphMatchesHandWiredBitwiseOnEveryDriver) {
  // The acceptance bar: the composed ingest→poisson→fft graph produces
  // bitwise-identical results to the hand-wired sequential reference on
  // every driver and every hosted width. Both hosted solves are
  // np-invariant (pinned by the poisson/fft2d app tests), which is what
  // makes this equality exact rather than approximate.
  const long items = battery_items();
  const auto reference = flagship_reference(items);
  for (const int np : battery_nps()) {
    const auto make = [&](std::vector<Array2D<Complex>>& out) {
      return counting_source(items) |
             compose::stage(flagship_problem) |
             app::poisson_component(np) |
             compose::stage([](const app::PoissonResult& r) {
               return interior_as_complex(r.u);
             }) |
             app::fft2d_component(np) |
             compose::sink([&out](Array2D<Complex> s) {
               out.push_back(std::move(s));
             });
    };
    std::vector<Array2D<Complex>> seq_out, thr_out, sched_out;
    auto g1 = make(seq_out);
    g1.run_sequential();
    auto g2 = make(thr_out);
    (void)g2.run_threaded();
    auto sched = make_scheduler(std::max(np, 2));
    auto g3 = make(sched_out);
    (void)g3.run_scheduler(*sched);
    ASSERT_EQ(seq_out.size(), reference.size()) << "np=" << np;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(seq_out[i], reference[i]) << "np=" << np << " item " << i;
      EXPECT_EQ(thr_out[i], reference[i]) << "np=" << np << " item " << i;
      EXPECT_EQ(sched_out[i], reference[i]) << "np=" << np << " item " << i;
    }
  }
}

// --------------------------------------------------------- shape checking --

TEST(Compose, HostedNodeRejectsNonPositiveWidthAtCombinatorCall) {
  const auto body = [](mpl::Process&, const long& v) { return v; };
  try {
    (void)compose::engine_job(0, body);
    ADD_FAILURE() << "engine_job(0) must throw";
  } catch (const GraphShapeError& e) {
    EXPECT_EQ(e.required(), 1);
    EXPECT_EQ(e.available(), 0);
  }
  EXPECT_THROW((void)compose::engine_farm(2, -1, body, compose::unordered),
               GraphShapeError);
}

TEST(Compose, UnorderedIntoOrderedRejectedAtGraphBuild) {
  // Composed graphs enforce the farm-order contract at build time on every
  // driver (the SPMD pipeline driver would reject the same shape at run
  // time): the order an ordered farm would restore after an unordered one
  // is already the nondeterministic completion order.
  int caught = 0;
  try {
    auto g = counting_source(10) |
             compose::farm(2, [] { return [](long v) { return v; }; },
                           compose::unordered) |
             compose::farm(2, [] { return [](long v) { return v; }; },
                           compose::ordered) |
             compose::sink([](long) {});
    (void)g;
  } catch (const GraphShapeError& e) {
    ++caught;
    EXPECT_EQ(e.node(), "farm#2 (ordered)");
  }
  EXPECT_EQ(caught, 1);
}

TEST(Compose, OverWideHostedJobRejectedBeforeAnythingRuns) {
  long pulled = 0;
  auto g = compose::source([&pulled]() -> std::optional<long> {
             ++pulled;
             return std::nullopt;
           }) |
           compose::engine_job(16, hosted_ranksum) |
           compose::sink([](long) {});
  auto sched = make_scheduler(4);
  int caught = 0;
  try {
    (void)g.run_scheduler(*sched);
  } catch (const GraphShapeError& e) {
    ++caught;
    EXPECT_EQ(e.node(), "hosted#1 (np=16)");
    EXPECT_EQ(e.required(), 16);
    EXPECT_EQ(e.available(), 4);
  }
  EXPECT_EQ(caught, 1);
  EXPECT_EQ(pulled, 0);  // rejected before the source was touched
  // The same graph still runs on the inline drivers (spmd_run hosts any
  // width cold) and on a wide-enough scheduler.
  g.run_sequential();
  EXPECT_EQ(pulled, 1);
}

// --------------------------------------------------- failure propagation --

TEST(Compose, FailingHostedJobFailsOnlyItsGraphRun) {
  auto sched = make_scheduler(4);
  const auto make_failing = [&]() {
    return counting_source(10) |
           compose::engine_job(2,
                               [](mpl::Process& p, const long& v) {
                                 if (v == 3 && p.rank() == 0) {
                                   throw std::runtime_error("hosted body failure");
                                 }
                                 return p.allreduce(
                                     v, [](long a, long b) { return a + b; });
                               }) |
           compose::sink([](long) {});
  };
  for (int round = 0; round < 2; ++round) {
    auto g = make_failing();
    int caught = 0;
    try {
      (void)g.run_scheduler(*sched);
    } catch (const std::runtime_error& e) {
      ++caught;
      EXPECT_STREQ(e.what(), "hosted body failure");
    }
    EXPECT_EQ(caught, 1) << "round " << round;
  }
  // The scheduler (and its engine) survived both failed graph runs: a
  // fresh graph and a plain job both complete.
  std::vector<long> out;
  auto ok = counting_source(5) | compose::engine_job(2, hosted_ranksum) |
            compose::sink([&out](long v) { out.push_back(v); });
  (void)ok.run_scheduler(*sched);
  EXPECT_EQ(out.size(), 5u);
  const auto stats = sched->stats();
  EXPECT_GT(stats.completed, 0u);
}

TEST(Compose, FailingHostedJobFailsInlineDriversToo) {
  const auto make = [] {
    return counting_source(10) |
           compose::engine_job(2,
                               [](mpl::Process& p, const long& v) {
                                 if (v == 4 && p.rank() == 1) {
                                   throw std::runtime_error("inline hosted failure");
                                 }
                                 return p.allreduce(
                                     v, [](long a, long b) { return a + b; });
                               }) |
           compose::sink([](long) {});
  };
  auto g1 = make();
  EXPECT_THROW(g1.run_sequential(), std::runtime_error);
  auto g2 = make();
  EXPECT_THROW((void)g2.run_threaded(), std::runtime_error);
}

// ------------------------------------------------------ deadline plumbing --

TEST(Compose, AnchoredDeadlinePlumbing) {
  // JobOptions::anchor moves the start of the deadline clock: an anchor
  // already past its budget must make submission throw JobDeadlineExceeded
  // without admitting (or running) the job — deterministically.
  auto sched = make_scheduler(2);
  bool ran = false;
  mpl::JobOptions options;
  options.deadline = std::chrono::milliseconds(500);
  options.anchor = std::chrono::steady_clock::now() - std::chrono::seconds(2);
  EXPECT_THROW(sched->run_job(
                   2, [&ran](mpl::Process&) { ran = true; },
                   mpl::Priority::kNormal, options),
               mpl::JobDeadlineExceeded);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sched->stats().expired_queued, 1u);
  // Default anchor ({}): the clock starts at submission, so the same
  // budget admits and completes a quick job.
  mpl::JobOptions fresh;
  fresh.deadline = std::chrono::seconds(30);
  (void)sched->run_job(2, [&ran](mpl::Process&) { ran = true; },
                       mpl::Priority::kNormal, fresh);
  EXPECT_TRUE(ran);
}

TEST(Compose, GraphDeadlineIsSharedAcrossHostedJobs) {
  // run_scheduler anchors the graph's JobOptions once at run start, so the
  // budget is shared across hosted jobs: each item's job sleeps well under
  // the 50ms budget (a per-submission clock would admit and finish every
  // one), but their sum overruns it, so a later job is torn down mid-run
  // or refused pre-admission — either way JobDeadlineExceeded.
  auto sched = make_scheduler(2);
  mpl::JobOptions options;
  options.deadline = std::chrono::milliseconds(50);
  auto g = counting_source(4) |
           compose::engine_job(2,
                               [](mpl::Process& p, const long& v) {
                                 if (p.rank() == 0) {
                                   std::this_thread::sleep_for(
                                       std::chrono::milliseconds(30));
                                 }
                                 p.barrier();
                                 return v;
                               }) |
           compose::sink([](long) {});
  EXPECT_THROW((void)g.run_scheduler(*sched, compose::Config{},
                                     mpl::Priority::kNormal, options),
               mpl::JobDeadlineExceeded);
}

}  // namespace
