// Tests for the archetype core: parfor policies, the one-deep
// divide-and-conquer skeleton (with toy specs exercising every combination
// of degenerate phases), and the traditional divide-and-conquer baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "mpl/spmd.hpp"
#include "support/rng.hpp"

namespace {

using namespace ppa;

// ----------------------------------------------------------------- parfor --

TEST(Parfor, SequentialVisitsAllInOrder) {
  std::vector<std::size_t> visited;
  parfor(5, seq, [&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Parfor, ParallelVisitsAllExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  parfor(kN, par(4), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parfor, ParallelEqualsSequentialForIndependentBodies) {
  // The paper's claim: replacing parfor with for gives identical results
  // for deterministic programs with independent iterations.
  constexpr std::size_t kN = 257;
  std::vector<double> a(kN), b(kN);
  const auto body = [](std::vector<double>& out) {
    return [&out](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
    };
  };
  parfor(kN, seq, body(a));
  parfor(kN, par(7), body(b));
  EXPECT_EQ(a, b);
}

TEST(Parfor, ZeroIterations) {
  int calls = 0;
  parfor(0, seq, [&](std::size_t) { ++calls; });
  parfor(0, par(4), [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Parfor, MoreWorkersThanIterations) {
  std::vector<std::atomic<int>> counts(3);
  parfor(3, par(8), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

// ---------------------------------------------------- one-deep skeleton ----

// Toy spec 1: degenerate split + degenerate merge ("embarrassingly
// parallel"): square every element locally.
struct SquareSpec {
  using value_type = int;
  void local_solve(std::vector<int>& local) const {
    for (auto& v : local) v *= v;
  }
};

// Toy spec 2: degenerate split, merge that globally sorts blocks by their
// minimum using a single splitter per process — a mini-mergesort stand-in
// that exercises the full merge dataflow deterministically.
struct MergeOnlySpec {
  using value_type = int;
  using merge_sample_type = int;
  using merge_param_type = int;

  void local_solve(std::vector<int>& local) const {
    std::sort(local.begin(), local.end());
  }
  std::vector<int> merge_sample(const std::vector<int>& local) const {
    return local;  // sample everything (tiny inputs in tests)
  }
  std::vector<int> merge_params(const std::vector<int>& all_samples,
                                int nparts) const {
    // Exact splitters from the full sample: element ranks at block edges.
    std::vector<int> sorted = all_samples;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> splitters;
    for (int q = 1; q < nparts; ++q) {
      const auto idx = block_range(sorted.size(), static_cast<std::size_t>(nparts),
                                   static_cast<std::size_t>(q))
                           .lo;
      splitters.push_back(idx < sorted.size() ? sorted[idx]
                                              : std::numeric_limits<int>::max());
    }
    return splitters;
  }
  std::vector<std::vector<int>> repartition(std::vector<int> local,
                                            const std::vector<int>& splitters,
                                            int nparts) const {
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(nparts));
    for (int v : local) {
      // Block q holds values v with exactly q splitters <= v (splitters mark
      // block starts), which is upper_bound's return index.
      const auto it = std::upper_bound(splitters.begin(), splitters.end(), v);
      parts[static_cast<std::size_t>(it - splitters.begin())].push_back(v);
    }
    return parts;
  }
  std::vector<int> local_merge(std::vector<std::vector<int>> parts) const {
    std::vector<int> out;
    for (auto& p : parts) out.insert(out.end(), p.begin(), p.end());
    std::sort(out.begin(), out.end());
    return out;
  }
};

// Toy spec 3: non-degenerate split, degenerate merge (quicksort-shaped):
// route values to blocks by range, then sort locally.
struct SplitOnlySpec {
  using value_type = int;
  using split_sample_type = int;
  using split_param_type = int;

  std::vector<int> split_sample(const std::vector<int>& local) const { return local; }
  std::vector<int> split_params(const std::vector<int>& all_samples,
                                int nparts) const {
    std::vector<int> sorted = all_samples;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> pivots;
    for (int q = 1; q < nparts; ++q) {
      const auto idx = block_range(sorted.size(), static_cast<std::size_t>(nparts),
                                   static_cast<std::size_t>(q))
                           .lo;
      pivots.push_back(idx < sorted.size() ? sorted[idx]
                                           : std::numeric_limits<int>::max());
    }
    return pivots;
  }
  std::vector<std::vector<int>> split_partition(std::vector<int> local,
                                                const std::vector<int>& pivots,
                                                int nparts) const {
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(nparts));
    for (int v : local) {
      const auto it = std::lower_bound(pivots.begin(), pivots.end(), v);
      std::size_t q = static_cast<std::size_t>(it - pivots.begin());
      if (it != pivots.end() && *it == v) ++q;  // values equal to pivot go right
      if (q >= static_cast<std::size_t>(nparts)) q = static_cast<std::size_t>(nparts) - 1;
      parts[q].push_back(v);
    }
    return parts;
  }
  void local_solve(std::vector<int>& local) const {
    std::sort(local.begin(), local.end());
  }
};

// Toy spec 4: BOTH phases non-degenerate (split by pivots, sort locally,
// reshard by splitters, k-way merge) — the full archetype dataflow, used to
// pin parameter-strategy parity and empty-input behavior across two
// parameter rounds and two all-to-alls.
struct BothPhasesSpec {
  using value_type = int;
  using split_sample_type = int;
  using split_param_type = int;
  using merge_sample_type = int;
  using merge_param_type = int;

  std::vector<int> split_sample(const std::vector<int>& local) const { return local; }
  std::vector<int> split_params(const std::vector<int>& all_samples,
                                int nparts) const {
    std::vector<int> sorted = all_samples;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> pivots;
    for (int q = 1; q < nparts; ++q) {
      const auto idx = block_range(sorted.size(), static_cast<std::size_t>(nparts),
                                   static_cast<std::size_t>(q))
                           .lo;
      pivots.push_back(idx < sorted.size() ? sorted[idx]
                                           : std::numeric_limits<int>::max());
    }
    return pivots;
  }
  std::vector<std::vector<int>> split_partition(std::vector<int> local,
                                                const std::vector<int>& pivots,
                                                int nparts) const {
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(nparts));
    for (int v : local) {
      const auto it = std::lower_bound(pivots.begin(), pivots.end(), v);
      auto q = static_cast<std::size_t>(it - pivots.begin());
      if (q >= static_cast<std::size_t>(nparts)) q = static_cast<std::size_t>(nparts) - 1;
      parts[q].push_back(v);
    }
    return parts;
  }
  void local_solve(std::vector<int>& local) const {
    std::sort(local.begin(), local.end());
  }
  std::vector<int> merge_sample(const std::vector<int>& local) const { return local; }
  std::vector<int> merge_params(const std::vector<int>& all_samples,
                                int nparts) const {
    return split_params(all_samples, nparts);
  }
  std::vector<std::vector<int>> repartition(std::vector<int> local,
                                            const std::vector<int>& splitters,
                                            int nparts) const {
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(nparts));
    for (int v : local) {
      const auto it = std::upper_bound(splitters.begin(), splitters.end(), v);
      auto q = static_cast<std::size_t>(it - splitters.begin());
      if (q >= static_cast<std::size_t>(nparts)) q = static_cast<std::size_t>(nparts) - 1;
      parts[q].push_back(v);
    }
    return parts;
  }
  std::vector<int> local_merge(std::vector<std::vector<int>> parts) const {
    std::vector<int> out;
    for (auto& p : parts) out.insert(out.end(), p.begin(), p.end());
    std::sort(out.begin(), out.end());
    return out;
  }
};

static_assert(onedeep::Spec<SquareSpec>);
static_assert(onedeep::Spec<MergeOnlySpec>);
static_assert(onedeep::HasMergePhase<MergeOnlySpec>);
static_assert(!onedeep::HasSplitPhase<MergeOnlySpec>);
static_assert(onedeep::HasSplitPhase<SplitOnlySpec>);
static_assert(!onedeep::HasMergePhase<SplitOnlySpec>);
static_assert(onedeep::Spec<BothPhasesSpec>);
static_assert(onedeep::HasSplitPhase<BothPhasesSpec>);
static_assert(onedeep::HasMergePhase<BothPhasesSpec>);
static_assert(!onedeep::HasSplitPhase<SquareSpec>);
static_assert(!onedeep::HasMergePhase<SquareSpec>);

TEST(OneDeep, BlockDistributeRoundtrip) {
  const auto data = random_ints(101, -50, 50, 3);
  const auto locals = onedeep::block_distribute(data, 7);
  EXPECT_EQ(locals.size(), 7u);
  EXPECT_EQ(onedeep::gather_blocks(locals), data);
}

TEST(OneDeep, DegeneratePhasesSequential) {
  SquareSpec spec;
  auto locals = onedeep::block_distribute(std::vector<int>{1, 2, 3, 4, 5}, 2);
  const auto out = onedeep::run_sequential(spec, std::move(locals));
  EXPECT_EQ(onedeep::gather_blocks(out), (std::vector<int>{1, 4, 9, 16, 25}));
}

TEST(OneDeep, MergePhaseSortsAcrossBlocks) {
  MergeOnlySpec spec;
  const auto data = random_ints(64, -100, 100, 17);
  auto locals = onedeep::block_distribute(data, 4);
  const auto out = onedeep::run_sequential(spec, std::move(locals));
  const auto result = onedeep::gather_blocks(out);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result, expected);
}

TEST(OneDeep, SplitPhaseSortsAcrossBlocks) {
  SplitOnlySpec spec;
  const auto data = random_ints(80, -1000, 1000, 23);
  auto locals = onedeep::block_distribute(data, 5);
  const auto out = onedeep::run_sequential(spec, std::move(locals));
  const auto result = onedeep::gather_blocks(out);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result, expected);
}

class OneDeepP : public testing::TestWithParam<int> {};

TEST_P(OneDeepP, SequentialEqualsParallelMergeSpec) {
  // The archetype's key guarantee: the sequentially executed version-1
  // algorithm and the SPMD version-2 algorithm produce identical results.
  const int p = GetParam();
  const auto data = random_ints(200, -500, 500, 41);
  MergeOnlySpec spec;
  const auto seq_out =
      onedeep::run_sequential(spec, onedeep::block_distribute(data, p));

  const auto par_out = mpl::spmd_collect<std::vector<int>>(p, [&](mpl::Process& proc) {
    MergeOnlySpec local_spec;
    auto local = onedeep::block_distribute(data, p)[static_cast<std::size_t>(proc.rank())];
    return onedeep::run_process(local_spec, proc, std::move(local));
  });
  EXPECT_EQ(par_out, seq_out);
}

TEST_P(OneDeepP, SequentialEqualsParallelSplitSpec) {
  const int p = GetParam();
  const auto data = random_ints(150, 0, 10000, 43);
  SplitOnlySpec spec;
  const auto seq_out =
      onedeep::run_sequential(spec, onedeep::block_distribute(data, p));
  const auto par_out = mpl::spmd_collect<std::vector<int>>(p, [&](mpl::Process& proc) {
    SplitOnlySpec local_spec;
    auto local = onedeep::block_distribute(data, p)[static_cast<std::size_t>(proc.rank())];
    return onedeep::run_process(local_spec, proc, std::move(local));
  });
  EXPECT_EQ(par_out, seq_out);
}

TEST_P(OneDeepP, RootBroadcastStrategyMatchesReplicated) {
  const int p = GetParam();
  const auto data = random_ints(120, -300, 300, 47);
  const auto run_with = [&](onedeep::ParamStrategy strategy) {
    return mpl::spmd_collect<std::vector<int>>(p, [&](mpl::Process& proc) {
      MergeOnlySpec local_spec;
      auto local =
          onedeep::block_distribute(data, p)[static_cast<std::size_t>(proc.rank())];
      return onedeep::run_process(local_spec, proc, std::move(local), strategy);
    });
  };
  EXPECT_EQ(run_with(onedeep::ParamStrategy::kReplicated),
            run_with(onedeep::ParamStrategy::kRootBroadcast));
}

TEST_P(OneDeepP, ParamStrategyParityWithBothPhases) {
  // Regression: with BOTH split and merge phases, kRootBroadcast must be
  // bitwise-identical to kReplicated and to run_sequential() — the spec's
  // parameters are computed from the same rank-ordered sample concatenation
  // whether gathered to the root and broadcast (non-root `params` is sized
  // entirely by Process::broadcast) or allgathered and replicated. The
  // paper presents the two as interchangeable implementations (section 3.2).
  const int p = GetParam();
  const auto data = random_ints(97, -400, 400, 71);
  BothPhasesSpec spec;
  const auto seq_out =
      onedeep::run_sequential(spec, onedeep::block_distribute(data, p));
  for (const auto strategy : {onedeep::ParamStrategy::kReplicated,
                              onedeep::ParamStrategy::kRootBroadcast}) {
    const auto par_out =
        mpl::spmd_collect<std::vector<int>>(p, [&](mpl::Process& proc) {
          BothPhasesSpec local_spec;
          auto local =
              onedeep::block_distribute(data, p)[static_cast<std::size_t>(proc.rank())];
          return onedeep::run_process(local_spec, proc, std::move(local), strategy);
        });
    EXPECT_EQ(par_out, seq_out) << "strategy " << static_cast<int>(strategy);
  }
}

TEST_P(OneDeepP, ZeroLengthLocalBlocksAreHarmless) {
  // Empty-input hardening: with fewer elements than ranks, trailing ranks
  // run the whole dataflow — sampling, parameter exchange, all-to-all,
  // merge — on zero-length locals. No assert, no UB, same answer.
  const int p = GetParam();
  const std::vector<int> tiny{5, -3, 9};
  BothPhasesSpec spec;
  const auto seq_out =
      onedeep::run_sequential(spec, onedeep::block_distribute(tiny, p));
  for (const auto strategy : {onedeep::ParamStrategy::kReplicated,
                              onedeep::ParamStrategy::kRootBroadcast}) {
    const auto par_out =
        mpl::spmd_collect<std::vector<int>>(p, [&](mpl::Process& proc) {
          BothPhasesSpec local_spec;
          auto local =
              onedeep::block_distribute(tiny, p)[static_cast<std::size_t>(proc.rank())];
          return onedeep::run_process(local_spec, proc, std::move(local), strategy);
        });
    EXPECT_EQ(par_out, seq_out) << "strategy " << static_cast<int>(strategy);
    EXPECT_EQ(onedeep::gather_blocks(par_out), (std::vector<int>{-3, 5, 9}));
  }
}

TEST_P(OneDeepP, CompletelyEmptyProblem) {
  const int p = GetParam();
  BothPhasesSpec spec;
  const auto seq_out = onedeep::run_sequential(
      spec, onedeep::block_distribute(std::vector<int>{}, p));
  const auto par_out =
      mpl::spmd_collect<std::vector<int>>(p, [&](mpl::Process& proc) {
        BothPhasesSpec local_spec;
        return onedeep::run_process(local_spec, proc, std::vector<int>{});
      });
  EXPECT_EQ(par_out, seq_out);
  EXPECT_TRUE(onedeep::gather_blocks(par_out).empty());
}

TEST(OneDeep, ConcatPartsHandlesAllEmptyParts) {
  std::vector<std::vector<int>> empties(5);
  EXPECT_TRUE(onedeep::detail::concat_parts(std::move(empties)).empty());
  EXPECT_TRUE(onedeep::detail::concat_parts(std::vector<std::vector<int>>{}).empty());
  // Mixed empty/non-empty, with the non-empty part not in front (defeats
  // the front-reuse fast path).
  std::vector<std::vector<int>> mixed(4);
  mixed[2] = {1, 2, 3};
  EXPECT_EQ(onedeep::detail::concat_parts(std::move(mixed)),
            (std::vector<int>{1, 2, 3}));
}

TEST(OneDeep, BlockDistributeFewerElementsThanParts) {
  const std::vector<int> data{4, 2};
  const auto locals = onedeep::block_distribute(data, 6);
  ASSERT_EQ(locals.size(), 6u);
  EXPECT_EQ(locals[0], (std::vector<int>{4}));
  EXPECT_EQ(locals[1], (std::vector<int>{2}));
  for (std::size_t i = 2; i < 6; ++i) EXPECT_TRUE(locals[i].empty());
  EXPECT_EQ(onedeep::gather_blocks(locals), data);
  // And the degenerate all-empty distribution round-trips too.
  const auto none = onedeep::block_distribute(std::vector<int>{}, 3);
  ASSERT_EQ(none.size(), 3u);
  EXPECT_TRUE(onedeep::gather_blocks(none).empty());
}

TEST_P(OneDeepP, MergePhaseUsesAlltoallPattern) {
  // Communication-pattern assertion: with the replicated parameter strategy
  // the merge phase needs exactly one allgather + one all-to-all.
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "no communication with one process";
  const auto data = random_ints(60, 0, 100, 53);
  mpl::TraceSnapshot trace;
  mpl::spmd_collect<std::vector<int>>(
      p,
      [&](mpl::Process& proc) {
        MergeOnlySpec local_spec;
        auto local =
            onedeep::block_distribute(data, p)[static_cast<std::size_t>(proc.rank())];
        return onedeep::run_process(local_spec, proc, std::move(local));
      },
      &trace);
  EXPECT_EQ(trace.op(mpl::Op::kAlltoall), static_cast<std::uint64_t>(p));
  EXPECT_EQ(trace.op(mpl::Op::kAllgather), static_cast<std::uint64_t>(p));
  EXPECT_EQ(trace.op(mpl::Op::kGather), 0u);
  EXPECT_EQ(trace.op(mpl::Op::kBroadcast), 0u);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, OneDeepP, testing::Values(1, 2, 3, 4, 6, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

// -------------------------------------------------- traditional D&C -------

// Sum over a range via divide and conquer (associative merge).
long dc_sum(std::vector<long> xs, int depth) {
  using Problem = std::vector<long>;
  return dc::divide_and_conquer<Problem, long>(
      std::move(xs),
      [](const Problem& p) { return p.size() <= 2; },
      [](Problem p) { return std::accumulate(p.begin(), p.end(), 0L); },
      [](Problem p) {
        const auto mid = static_cast<std::ptrdiff_t>(p.size() / 2);
        Problem left(p.begin(), p.begin() + mid);
        Problem right(p.begin() + mid, p.end());
        std::vector<Problem> subs;
        subs.push_back(std::move(left));
        subs.push_back(std::move(right));
        return subs;
      },
      [](std::vector<long> sols) { return sols[0] + sols[1]; }, depth);
}

TEST(TraditionalDC, SequentialSum) {
  std::vector<long> xs(100);
  std::iota(xs.begin(), xs.end(), 1);
  EXPECT_EQ(dc_sum(xs, 0), 5050);
}

TEST(TraditionalDC, ParallelMatchesSequential) {
  std::vector<long> xs(1000);
  std::iota(xs.begin(), xs.end(), 1);
  EXPECT_EQ(dc_sum(xs, 3), dc_sum(xs, 0));
}

TEST(TraditionalDC, BaseCaseOnly) {
  EXPECT_EQ(dc_sum({7}, 2), 7);
  EXPECT_EQ(dc_sum({}, 2), 0);
}

TEST(TraditionalDC, ForkDepthFor) {
  EXPECT_EQ(dc::fork_depth_for(1), 0);
  EXPECT_EQ(dc::fork_depth_for(2), 1);
  EXPECT_EQ(dc::fork_depth_for(3), 2);
  EXPECT_EQ(dc::fork_depth_for(4), 2);
  EXPECT_EQ(dc::fork_depth_for(8), 3);
  EXPECT_EQ(dc::fork_depth_for(9), 4);
}

}  // namespace
