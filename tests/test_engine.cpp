// Unit tests for the persistent SPMD engine (mpl/engine.hpp): warm-rank job
// submission, per-job epochs (independent traces, re-armed barrier, emptied
// mailboxes), abort-then-reuse, the spmd_run warm wrapper, recyclable tag
// blocks (mpl/tagspace.hpp), and the engine-backed archetype drivers
// (pipeline::run_engine, bnb::solve_engine, onedeep::run_engine).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/branch_and_bound.hpp"
#include "core/onedeep.hpp"
#include "core/pipeline.hpp"
#include "mpl/engine.hpp"
#include "mpl/spmd.hpp"
#include "mpl/tagspace.hpp"

namespace {

using namespace ppa;
using namespace ppa::mpl;

// ---------------------------------------------------------------- engine --

TEST(Engine, RunsABasicJob) {
  Engine engine(4);
  EXPECT_EQ(engine.width(), 4);
  std::vector<int> sums(4, -1);
  engine.run(4, [&](Process& p) {
    sums[static_cast<std::size_t>(p.rank())] = p.allreduce(p.rank(), SumOp{});
  });
  EXPECT_EQ(sums, (std::vector<int>{6, 6, 6, 6}));
  EXPECT_EQ(engine.jobs_run(), 1u);
}

TEST(Engine, JobNarrowerThanWidthSeesJobSize) {
  Engine engine(6);
  std::vector<int> sizes(6, -1);
  engine.run(3, [&](Process& p) {
    sizes[static_cast<std::size_t>(p.rank())] = p.size();
    p.barrier();  // barrier must be armed for 3 participants, not 6
    (void)p.allgather_value(p.rank());
  });
  EXPECT_EQ(sizes, (std::vector<int>{3, 3, 3, -1, -1, -1}));
}

TEST(Engine, ManyJobsReuseWarmRanks) {
  Engine engine(4);
  for (int job = 0; job < 50; ++job) {
    const int np = 1 + job % 4;
    std::atomic<int> hits{0};
    engine.run(np, [&](Process& p) {
      const auto all = p.allgather_value(p.rank());
      ASSERT_EQ(static_cast<int>(all.size()), np);
      hits.fetch_add(1);
    });
    EXPECT_EQ(hits.load(), np);
  }
  EXPECT_EQ(engine.jobs_run(), 50u);
}

TEST(Engine, NprocsOutOfRangeThrows) {
  Engine engine(2);
  EXPECT_THROW(engine.run(0, [](Process&) {}), std::invalid_argument);
  EXPECT_THROW(engine.run(3, [](Process&) {}), std::invalid_argument);
}

TEST(Engine, ConsecutiveJobsReportIndependentTraces) {
  Engine engine(4);
  const auto t1 = engine.run(4, [](Process& p) {
    if (p.rank() == 0) p.send_value(1, 5, 42);
    if (p.rank() == 1) (void)p.recv_value<int>(0, 5);
  });
  EXPECT_EQ(t1.messages, 1u);
  EXPECT_EQ(t1.bytes, sizeof(int));
  ASSERT_EQ(t1.sent_bytes_by_rank.size(), 4u);
  EXPECT_EQ(t1.sent_bytes_by_rank[0], sizeof(int));
  EXPECT_EQ(t1.sent_bytes_by_rank[1], 0u);
  EXPECT_GT(t1.copied_bytes, 0u);

  // Job 2 on the same engine: counters must restart from zero, per-sender
  // attribution must reflect only this job's senders.
  const auto t2 = engine.run(2, [](Process& p) {
    if (p.rank() == 1) {
      p.send_value(0, 6, 7);
      p.send_value(0, 7, 9);
    }
    if (p.rank() == 0) {
      (void)p.recv_value<int>(1, 6);
      (void)p.recv_value<int>(1, 7);
    }
  });
  EXPECT_EQ(t2.messages, 2u);
  EXPECT_EQ(t2.bytes, 2 * sizeof(int));
  ASSERT_EQ(t2.sent_bytes_by_rank.size(), 2u);
  EXPECT_EQ(t2.sent_bytes_by_rank[0], 0u);
  EXPECT_EQ(t2.sent_bytes_by_rank[1], 2 * sizeof(int));
  EXPECT_EQ(t2.op(Op::kBarrier), 0u);
}

TEST(Engine, AbortReleasesBlockedRanksAndRethrowsRootCause) {
  Engine engine(4);
  std::atomic<int> released{0};
  try {
    engine.run(4, [&](Process& p) {
      if (p.rank() == 2) throw std::runtime_error("rank 2 failed");
      try {
        // Never satisfied: every other rank parks in a recv until abort.
        (void)p.recv<int>((p.rank() + 1) % 4, 99);
      } catch (const WorldAborted&) {
        released.fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected the job's root cause to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 2 failed");
  }
  EXPECT_EQ(released.load(), 3);
}

TEST(Engine, NextJobAfterAbortRunsClean) {
  Engine engine(3);
  // Job 1 leaves debris everywhere it can: an undelivered message (rank 0 ->
  // rank 1 tag 77) and an abort while ranks sit in a barrier.
  EXPECT_THROW(engine.run(3,
                          [](Process& p) {
                            if (p.rank() == 0) {
                              p.send_value(1, 77, 123);
                              throw std::logic_error("boom");
                            }
                            p.barrier();  // released by the abort
                          }),
               std::logic_error);

  // Job 2: no stuck barrier waiters, no stale arrivals, collectives work.
  std::atomic<int> stale{0};
  std::vector<int> sums(3, -1);
  engine.run(3, [&](Process& p) {
    Envelope env;
    if (p.world().mailbox(p.rank()).try_pop(kAnySource, 77, env)) stale.fetch_add(1);
    p.barrier();
    sums[static_cast<std::size_t>(p.rank())] = p.allreduce(1, SumOp{});
  });
  EXPECT_EQ(stale.load(), 0) << "mailboxes must be emptied at job-epoch start";
  EXPECT_EQ(sums, (std::vector<int>{3, 3, 3}));
  EXPECT_EQ(engine.jobs_run(), 2u);
}

TEST(Engine, SubmitFromOwnRankThreadThrows) {
  Engine engine(2);
  EXPECT_THROW(engine.run(2,
                          [&](Process& p) {
                            if (p.rank() == 0) {
                              engine.run(1, [](Process&) {});
                            }
                          }),
               std::logic_error);
  // ...and the engine survives the failed job.
  engine.run(2, [](Process& p) { p.barrier(); });
}

TEST(Engine, NestedSpmdRunFallsBackToColdWorld) {
  Engine engine(2);
  std::atomic<int> inner_total{0};
  engine.run(2, [&](Process& p) {
    if (p.rank() == 0) {
      // A nested spmd_run from inside a job body must not deadlock.
      spmd_run(2, [&](Process& q) { inner_total.fetch_add(q.size()); });
    }
    p.barrier();
  });
  EXPECT_EQ(inner_total.load(), 4);
}

// ------------------------------------------------------- spmd_run wrapper --

TEST(SpmdRunWarm, KeepsTraceShapeAndFailureSemantics) {
  // Two sizes back-to-back: the process engine grows and reuses.
  const auto t4 = spmd_run(4, [](Process& p) { p.barrier(); });
  EXPECT_EQ(t4.op(Op::kBarrier), 4u);
  EXPECT_EQ(t4.sent_bytes_by_rank.size(), 4u);
  const auto t2 = spmd_run(2, [](Process& p) { p.barrier(); });
  EXPECT_EQ(t2.op(Op::kBarrier), 2u);
  EXPECT_EQ(t2.sent_bytes_by_rank.size(), 2u);

  EXPECT_THROW(spmd_run(3,
                        [](Process& p) {
                          if (p.rank() == 1) throw std::out_of_range("oops");
                          p.barrier();
                        }),
               std::out_of_range);
  // The process engine stays usable after the failure.
  const auto t3 = spmd_run(3, [](Process& p) { p.barrier(); });
  EXPECT_EQ(t3.op(Op::kBarrier), 3u);
}

TEST(SpmdRunWarm, DependentConcurrentRunsDoNotDeadlock) {
  // A run the in-flight engine job *depends on*: job 1 occupies the process
  // engine and spins until a second spmd_run (from this thread) completes.
  // The second call must detect the busy engine and fall back to a cold
  // world; blocking on engine serialization would deadlock both.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::jthread holder([&] {
    spmd_run(2, [&](Process& p) {
      if (p.rank() == 0) {
        started.store(true);
        while (!release.load()) std::this_thread::yield();
      }
      p.barrier();
    });
  });
  while (!started.load()) std::this_thread::yield();
  const auto trace = spmd_run(2, [](Process& p) { p.barrier(); });
  EXPECT_EQ(trace.op(Op::kBarrier), 2u);
  release.store(true);
}

// ------------------------------------------------------------- tag space --

TEST(TagSpace, RecyclesPastOldExhaustionPoint) {
  // A space with room for exactly one 8-tag block: under the old monotone
  // allocator the second reservation would already throw length_error.
  TagSpace space(100, 108);
  for (int i = 0; i < 1000; ++i) {
    const int base = space.reserve(8);
    EXPECT_EQ(base, 100);
    space.release(base, 8);
  }
  EXPECT_EQ(space.outstanding(), 0);
}

TEST(TagSpace, CoalescesFreedNeighbors) {
  TagSpace space(0x1000, 0x1000 + 12);
  const int a = space.reserve(4);
  const int b = space.reserve(4);
  const int c = space.reserve(4);
  EXPECT_THROW(space.reserve(1), std::length_error);
  // Release out of order; the free list must coalesce back to one range.
  space.release(b, 4);
  space.release(a, 4);
  space.release(c, 4);
  EXPECT_EQ(space.outstanding(), 0);
  const int full = space.reserve(12);
  EXPECT_EQ(full, 0x1000);
  space.release(full, 12);
}

TEST(TagSpace, TagBlockReleasesOnDestruction) {
  auto space = std::make_shared<TagSpace>(50, 60);
  {
    TagBlock block(space, 10);
    EXPECT_EQ(block.base(), 50);
    EXPECT_EQ(block.count(), 10);
    EXPECT_EQ(space->outstanding(), 10);
    EXPECT_THROW(TagBlock(space, 1), std::length_error);
  }
  EXPECT_EQ(space->outstanding(), 0);
  TagBlock moved_from(space, 10);
  TagBlock moved_to = std::move(moved_from);
  EXPECT_FALSE(static_cast<bool>(moved_from));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(space->outstanding(), 10);
  moved_to.release();
  EXPECT_EQ(space->outstanding(), 0);
}

TEST(TagSpace, WorldScopedReservation) {
  World world(2, std::make_shared<TagSpace>(200, 216));
  {
    auto block = world.reserve_tags(16);
    EXPECT_EQ(block.base(), 200);
    EXPECT_EQ(world.tag_space().outstanding(), 16);
  }
  EXPECT_EQ(world.tag_space().outstanding(), 0);
}

// ------------------------------------------ engine-backed archetype runs --

TEST(EngineDrivers, PipelineJobsRecycleTagBlocks) {
  // Tag space with room for exactly one pipeline's [data, credit] pairs
  // (2 edges -> 4 tags): looping plan construction past this capacity is
  // the regression the recyclable allocator exists for — the old
  // process-global monotone counter would exhaust on the second run.
  Engine engine(3, std::make_shared<TagSpace>(kReservedTagSpaceBase,
                                              kReservedTagSpaceBase + 4));
  for (int run = 0; run < 25; ++run) {
    int next = 0;
    long total = 0;
    auto plan = pipeline::source([&next]() -> std::optional<int> {
                  return next < 8 ? std::optional<int>(next++) : std::nullopt;
                }) |
                pipeline::stage([](int v) { return v * 2; }) |
                pipeline::sink([&total](int v) { total += v; });
    ASSERT_EQ(plan.ranks_required(), 3);
    plan.run_engine(engine);
    EXPECT_EQ(total, 56);
    EXPECT_EQ(engine.world().tag_space().outstanding(), 0)
        << "pipeline run " << run << " leaked its tag block";
  }
  EXPECT_EQ(engine.jobs_run(), 25u);
}

/// Minimize the sum of a 3-level ternary tree path (values 0..2 per level).
struct TernaryPathSpec {
  struct Node {
    int depth = 0;
    int sum = 0;
  };
  using node_type = Node;
  [[nodiscard]] double bound(const Node& n) const { return n.sum; }
  [[nodiscard]] bool is_leaf(const Node& n) const { return n.depth == 3; }
  [[nodiscard]] double leaf_value(const Node& n) const { return n.sum; }
  [[nodiscard]] std::vector<Node> branch(const Node& n) const {
    std::vector<Node> kids;
    for (int v = 0; v < 3; ++v) kids.push_back({n.depth + 1, n.sum + v});
    return kids;
  }
};

/// Degenerate-split sorting spec: local sort + sample-based repartition.
struct SampleSortSpec {
  using value_type = int;
  using merge_sample_type = int;
  using merge_param_type = int;
  void local_solve(std::vector<int>& local) const {
    std::sort(local.begin(), local.end());
  }
  [[nodiscard]] std::vector<int> merge_sample(const std::vector<int>& local) const {
    return local;
  }
  [[nodiscard]] std::vector<int> merge_params(const std::vector<int>& samples,
                                              int nparts) const {
    auto sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> splitters;
    for (int k = 1; k < nparts; ++k) {
      splitters.push_back(
          sorted.empty() ? 0
                         : sorted[sorted.size() * static_cast<std::size_t>(k) /
                                  static_cast<std::size_t>(nparts)]);
    }
    return splitters;
  }
  [[nodiscard]] std::vector<std::vector<int>> repartition(
      std::vector<int> local, const std::vector<int>& splitters,
      int nparts) const {
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(nparts));
    for (const int v : local) {
      std::size_t part = 0;
      while (part < splitters.size() && v >= splitters[part]) ++part;
      parts[part].push_back(v);
    }
    return parts;
  }
  [[nodiscard]] std::vector<int> local_merge(
      std::vector<std::vector<int>> parts) const {
    std::vector<int> out;
    for (auto& part : parts) out.insert(out.end(), part.begin(), part.end());
    std::sort(out.begin(), out.end());
    return out;
  }
};

TEST(EngineDrivers, BnbSolveOnWarmEngine) {
  Engine engine(4);
  TernaryPathSpec spec;
  for (int run = 0; run < 3; ++run) {
    bnb::ProcessStats stats;
    const double best =
        bnb::solve_engine(spec, engine, TernaryPathSpec::Node{}, 4, 16, 2, &stats);
    EXPECT_EQ(best, 0.0);
    EXPECT_GT(stats.rounds, 0u);
  }
}

TEST(EngineDrivers, OneDeepOnWarmEngine) {
  Engine engine(4);
  SampleSortSpec spec;
  std::vector<int> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>((i * 37) % 101);
  }
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  for (int run = 0; run < 3; ++run) {
    auto locals = onedeep::run_engine(
        spec, engine, onedeep::block_distribute(data, 4));
    EXPECT_EQ(onedeep::gather_blocks(std::move(locals)), expected);
  }
}

TEST(EngineDrivers, MixedJobStreamOnOneEngine) {
  // The serving shape: heterogeneous jobs interleaved on one warm engine.
  Engine engine(4);
  for (int round = 0; round < 5; ++round) {
    engine.run(4, [](Process& p) { (void)p.allgather_value(p.rank()); });
    engine.run(2, [](Process& p) {
      if (p.rank() == 0) p.send_value(1, 3, 1);
      if (p.rank() == 1) (void)p.recv_value<int>(0, 3);
    });
    int next = 0;
    long total = 0;
    auto plan = pipeline::source([&next]() -> std::optional<int> {
                  return next < 4 ? std::optional<int>(next++) : std::nullopt;
                }) |
                pipeline::stage([](int v) { return v + 1; }) |
                pipeline::sink([&total](int v) { total += v; });
    plan.run_engine(engine);
    EXPECT_EQ(total, 10);
  }
  EXPECT_EQ(engine.jobs_run(), 15u);
  EXPECT_EQ(engine.world().tag_space().outstanding(), 0);
}

TEST(TagSpace, ExhaustionReportsRequestAndOutstanding) {
  auto space = std::make_shared<TagSpace>(1 << 24, (1 << 24) + 8);
  TagBlock held(space, 6);
  try {
    (void)space->reserve(4);
    FAIL() << "reserve past capacity must throw";
  } catch (const TagSpaceExhausted& e) {
    EXPECT_EQ(e.requested, 4);
    EXPECT_EQ(e.outstanding, 6);
    EXPECT_EQ(e.capacity, 8);
    const std::string what = e.what();
    EXPECT_NE(what.find("requested 4"), std::string::npos) << what;
    EXPECT_NE(what.find("outstanding 6 of 8"), std::string::npos) << what;
  }
  // The failed reserve must not perturb the free list: after releasing the
  // held block the full (coalesced) range is reservable again.
  held.release();
  TagBlock all(space, 8);
  EXPECT_EQ(all.base(), 1 << 24);
  EXPECT_EQ(space->outstanding(), 8);
}

TEST(EngineLifetime, DestroyWhileJobIsMidAbort) {
  // Regression: destroying the engine while a job is tearing down via abort
  // must not hang the destructor's rank-thread joins.
  std::atomic<int> entered{0};
  std::atomic<bool> release_thrower{false};
  auto engine = std::make_unique<Engine>(4);
  std::exception_ptr seen;
  std::thread submitter([&] {
    try {
      engine->run(4, [&](Process& p) {
        entered.fetch_add(1);
        if (p.rank() == 0) {
          while (!release_thrower.load()) std::this_thread::yield();
          throw std::runtime_error("boom");
        }
        (void)p.recv_value<int>(0, 9);  // blocks until the abort releases it
      });
    } catch (...) {
      seen = std::current_exception();
    }
  });
  while (entered.load() < 4) std::this_thread::yield();
  release_thrower.store(true);  // abort starts propagating...
  engine.reset();               // ...while the engine is being destroyed
  submitter.join();
  ASSERT_TRUE(seen);
  EXPECT_THROW(std::rethrow_exception(seen), std::runtime_error);
}

TEST(EngineLifetime, DestroyWhileWedgedJobAwaitsWatchdog) {
  // Harder variant: no rank ever throws — the job is wedged on a message
  // that never arrives and only the watchdog can end it. Destruction must
  // keep the monitor alive until it rescues the wedged ranks.
  auto engine = std::make_unique<Engine>(2);
  std::atomic<int> entered{0};
  std::exception_ptr seen;
  std::thread submitter([&] {
    try {
      engine->run(
          2,
          [&](Process& p) {
            entered.fetch_add(1);
            (void)p.recv_value<int>((p.rank() + 1) % 2, 13);
          },
          JobOptions{.watchdog_grace = std::chrono::milliseconds(100)});
    } catch (...) {
      seen = std::current_exception();
    }
  });
  while (entered.load() < 2) std::this_thread::yield();
  engine.reset();  // must block, not hang: the watchdog fires mid-destructor
  submitter.join();
  ASSERT_TRUE(seen);
  EXPECT_THROW(std::rethrow_exception(seen), JobStalled);
}

}  // namespace
