// Tests for the persistent halo-exchange plans (meshspectral/plan.hpp):
// halo correctness on non-square and odd-sized grids, periodic vs
// non-periodic vs mixed boundaries, width-2 halos, one-round message
// counts, snapshot-at-begin semantics, re-entry across iterations without
// replanning, the overlapped stencil helper, 3-D plans, and the split-phase
// row/column redistribution plans.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "meshspectral/meshspectral.hpp"
#include "mpl/spmd.hpp"

namespace {

using namespace ppa;
using mesh::Grid2D;
using mesh::Grid3D;

double tagval(std::size_t gi, std::size_t gj) {
  return static_cast<double>(gi) * 1000.0 + static_cast<double>(gj);
}

double tagval3(std::size_t i, std::size_t j, std::size_t k) {
  return static_cast<double>(i) * 1e6 + static_cast<double>(j) * 1e3 +
         static_cast<double>(k);
}

std::size_t wrap(std::ptrdiff_t v, std::size_t n) {
  const auto m = static_cast<std::ptrdiff_t>(n);
  return static_cast<std::size_t>(((v % m) + m) % m);
}

/// Check every ghost cell of `g` (all `ghost` layers, corners included):
/// in-domain ghosts must hold the owner's tagval; out-of-domain ghosts must
/// hold `sentinel` (untouched). Periodic axes wrap the expectation instead.
void expect_ghosts(const Grid2D<double>& g, std::size_t kn, std::size_t km,
                   mesh::Periodicity periodic, double sentinel, int rank) {
  const auto nx = static_cast<std::ptrdiff_t>(g.nx());
  const auto ny = static_cast<std::ptrdiff_t>(g.ny());
  const auto gw = static_cast<std::ptrdiff_t>(g.ghost());
  for (std::ptrdiff_t i = -gw; i < nx + gw; ++i) {
    for (std::ptrdiff_t j = -gw; j < ny + gw; ++j) {
      const bool ghost = (i < 0 || i >= nx || j < 0 || j >= ny);
      if (!ghost) continue;
      auto gi = static_cast<std::ptrdiff_t>(g.x_range().lo) + i;
      auto gj = static_cast<std::ptrdiff_t>(g.y_range().lo) + j;
      const bool in_x = gi >= 0 && gi < static_cast<std::ptrdiff_t>(kn);
      const bool in_y = gj >= 0 && gj < static_cast<std::ptrdiff_t>(km);
      if ((!in_x && !periodic.x) || (!in_y && !periodic.y)) {
        EXPECT_EQ(g(i, j), sentinel)
            << "rank " << rank << " ghost (" << i << "," << j << ") touched";
        continue;
      }
      const std::size_t wi = periodic.x ? wrap(gi, kn) : static_cast<std::size_t>(gi);
      const std::size_t wj = periodic.y ? wrap(gj, km) : static_cast<std::size_t>(gj);
      EXPECT_EQ(g(i, j), tagval(wi, wj))
          << "rank " << rank << " ghost (" << i << "," << j << ")";
    }
  }
}

// ------------------------------------------------------- halo correctness --

struct PlanCase {
  int nprocs;
  std::size_t nx, ny, ghost;
  mesh::Periodicity periodic;
};

class PlanHalo : public testing::TestWithParam<PlanCase> {};

TEST_P(PlanHalo, GhostsCorrectEverywhere) {
  const auto c = GetParam();
  const auto pg = mpl::CartGrid2D::near_square(c.nprocs);
  mpl::spmd_run(c.nprocs, [&](mpl::Process& p) {
    Grid2D<double> g(c.nx, c.ny, pg, p.rank(), c.ghost);
    g.fill(-7.0);
    g.init_from_global(&tagval);
    mesh::ExchangePlan2D plan(pg, p.rank(), g,
                              mesh::ExchangePlan2D::Options{c.periodic, true, 0});
    plan.begin_exchange(p, g);
    plan.end_exchange(p, g);
    expect_ghosts(g, c.nx, c.ny, c.periodic, -7.0, p.rank());
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanHalo,
    testing::Values(
        // Non-square and odd-sized grids, open boundaries.
        PlanCase{2, 13, 7, 1, {false, false}},
        PlanCase{3, 11, 5, 1, {false, false}},
        PlanCase{4, 13, 9, 1, {false, false}},
        PlanCase{6, 17, 11, 1, {false, false}},
        // Width-2 halos, open and fully periodic.
        PlanCase{4, 10, 9, 2, {false, false}},
        PlanCase{4, 10, 9, 2, {true, true}},
        PlanCase{9, 13, 11, 2, {true, true}},
        // Periodic and mixed periodicity, including single-rank axes.
        PlanCase{1, 8, 6, 1, {true, true}},
        PlanCase{2, 8, 6, 1, {true, true}},
        PlanCase{4, 8, 6, 1, {true, false}},
        PlanCase{4, 8, 6, 1, {false, true}},
        PlanCase{6, 9, 7, 1, {true, true}}),
    [](const testing::TestParamInfo<PlanCase>& info) {
      const auto& c = info.param;
      std::string name = "P" + std::to_string(c.nprocs) + "_" +
                         std::to_string(c.nx) + "x" + std::to_string(c.ny) +
                         "_g" + std::to_string(c.ghost) +
                         (c.periodic.x ? "_px" : "") + (c.periodic.y ? "_py" : "");
      return name;
    });

// ------------------------------------------------------ one-round property --

TEST(ExchangePlan, WidthTwoHaloCrossesInOneRound) {
  // A width-2 halo must cost the same number of messages as width-1: one
  // round to every neighbor, no per-axis relay.
  const int nprocs = 4;
  const auto pg = mpl::CartGrid2D::near_square(nprocs);  // 2x2
  for (const std::size_t ghost : {std::size_t{1}, std::size_t{2}}) {
    mpl::TraceSnapshot trace;
    mpl::spmd_collect<int>(
        nprocs,
        [&](mpl::Process& p) {
          Grid2D<double> g(12, 12, pg, p.rank(), ghost);
          mesh::ExchangePlan2D plan(pg, p.rank(), g);
          plan.begin_exchange(p, g);
          plan.end_exchange(p, g);
          return 0;
        },
        &trace);
    // 2x2 grid: 4 orthogonal pairs + 2 diagonal pairs, 2 messages each.
    EXPECT_EQ(trace.messages, 12u) << "ghost width " << ghost;
  }
}

TEST(ExchangePlan, CornerlessPlanSkipsDiagonalMessages) {
  const int nprocs = 4;
  const auto pg = mpl::CartGrid2D::near_square(nprocs);  // 2x2
  mpl::TraceSnapshot trace;
  mpl::spmd_collect<int>(
      nprocs,
      [&](mpl::Process& p) {
        Grid2D<double> g(12, 12, pg, p.rank(), 1);
        mesh::ExchangePlan2D plan(
            pg, p.rank(), g, mesh::ExchangePlan2D::Options{{}, false, 0});
        plan.begin_exchange(p, g);
        plan.end_exchange(p, g);
        return 0;
      },
      &trace);
  EXPECT_EQ(trace.messages, 8u);  // orthogonal pairs only
}

// ------------------------------------------------------ begin/end semantics --

TEST(ExchangePlan, BeginSnapshotsTheSentData) {
  // Interior writes between begin and end must not leak into what the
  // neighbors receive — the split phases are safe to overlap with updates.
  const int nprocs = 4;
  const auto pg = mpl::CartGrid2D::near_square(nprocs);
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid2D<double> g(8, 8, pg, p.rank(), 1);
    g.init_from_global(&tagval);
    mesh::ExchangePlan2D plan(pg, p.rank(), g);
    plan.begin_exchange(p, g);
    // Scribble over the entire interior while the halos are in flight.
    mesh::for_interior(g, [&](std::ptrdiff_t i, std::ptrdiff_t j) {
      g(i, j) = -1.0;
    });
    plan.end_exchange(p, g);
    // Ghosts hold the values from the time of begin, not the scribbles.
    expect_ghosts(g, 8, 8, {false, false}, 0.0, p.rank());
  });
}

TEST(ExchangePlan, ReenteredAcrossIterationsWithoutReplanning) {
  // One plan, many begin/end pairs, evolving data: every iteration's ghosts
  // must reflect that iteration's interior. This is the persistent-plan
  // contract the solvers rely on.
  const int nprocs = 6;
  const auto pg = mpl::CartGrid2D::near_square(nprocs);
  constexpr std::size_t kN = 11, kM = 9;
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid2D<double> g(kN, kM, pg, p.rank(), 1);
    mesh::ExchangePlan2D plan(pg, p.rank(), g);
    for (int iter = 0; iter < 5; ++iter) {
      const double shift = 1e7 * iter;
      g.init_from_global([&](std::size_t gi, std::size_t gj) {
        return tagval(gi, gj) + shift;
      });
      plan.begin_exchange(p, g);
      EXPECT_TRUE(plan.in_flight());
      plan.end_exchange(p, g);
      EXPECT_FALSE(plan.in_flight());
      const auto nx = static_cast<std::ptrdiff_t>(g.nx());
      const auto ny = static_cast<std::ptrdiff_t>(g.ny());
      for (std::ptrdiff_t i = -1; i <= nx; ++i) {
        for (std::ptrdiff_t j = -1; j <= ny; ++j) {
          const bool ghost = (i < 0 || i >= nx || j < 0 || j >= ny);
          if (!ghost) continue;
          const auto gi = static_cast<std::ptrdiff_t>(g.x_range().lo) + i;
          const auto gj = static_cast<std::ptrdiff_t>(g.y_range().lo) + j;
          if (gi < 0 || gi >= static_cast<std::ptrdiff_t>(kN) || gj < 0 ||
              gj >= static_cast<std::ptrdiff_t>(kM)) {
            continue;
          }
          EXPECT_EQ(g(i, j), tagval(static_cast<std::size_t>(gi),
                                    static_cast<std::size_t>(gj)) +
                                 shift)
              << "iter " << iter << " rank " << p.rank() << " (" << i << ","
              << j << ")";
        }
      }
    }
  });
}

TEST(ExchangePlan, OnePlanServesSwappedGrids) {
  // A plan holds no grid reference: after std::swap of a ping-pong pair the
  // same plan must keep working on either buffer.
  const int nprocs = 4;
  const auto pg = mpl::CartGrid2D::near_square(nprocs);
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid2D<double> a(10, 10, pg, p.rank(), 1), b(10, 10, pg, p.rank(), 1);
    a.init_from_global(&tagval);
    b.init_from_global([](std::size_t i, std::size_t j) {
      return 5e8 + tagval(i, j);
    });
    mesh::ExchangePlan2D plan(pg, p.rank(), a);
    plan.begin_exchange(p, a);
    plan.end_exchange(p, a);
    std::swap(a, b);
    plan.begin_exchange(p, a);  // now the other buffer
    plan.end_exchange(p, a);
    const auto nx = static_cast<std::ptrdiff_t>(a.nx());
    if (a.x_range().lo > 0) {
      EXPECT_EQ(a(-1, 0), 5e8 + tagval(a.x_range().lo - 1, a.y_range().lo));
    }
    (void)nx;
  });
}

// ------------------------------------------------------ overlapped stencil --

TEST(ExchangePlan, OverlappedStencilMatchesBlockingStencil) {
  // apply_stencil_overlapped must produce exactly what a blocking exchange
  // followed by apply_stencil produces — for a 9-point stencil that reads
  // the ghost corners.
  const int nprocs = 4;
  const auto pg = mpl::CartGrid2D::near_square(nprocs);
  constexpr std::size_t kN = 12, kM = 10;
  const auto nine_point = [](const Grid2D<double>& u, std::ptrdiff_t i,
                             std::ptrdiff_t j) {
    return u(i - 1, j - 1) + u(i - 1, j) + u(i - 1, j + 1) + u(i, j - 1) +
           u(i, j) + u(i, j + 1) + u(i + 1, j - 1) + u(i + 1, j) +
           u(i + 1, j + 1);
  };
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid2D<double> u1(kN, kM, pg, p.rank(), 1), out1(kN, kM, pg, p.rank(), 1);
    Grid2D<double> u2(kN, kM, pg, p.rank(), 1), out2(kN, kM, pg, p.rank(), 1);
    const auto init = [](std::size_t gi, std::size_t gj) {
      return std::sin(static_cast<double>(gi * 17 + gj * 3));
    };
    u1.init_from_global(init);
    u2.init_from_global(init);

    mesh::exchange_boundaries(p, pg, u1);
    mesh::apply_stencil(out1, u1, nine_point);

    mesh::ExchangePlan2D plan(pg, p.rank(), u2);
    mesh::apply_stencil_overlapped(p, plan, out2, u2, 1, nine_point);

    EXPECT_EQ(out1.interior(), out2.interior());
  });
}

// ------------------------------------------------------------------- 3-D --

TEST(ExchangePlan3D, GhostsCorrectOnOddGridInclCornersWidth2) {
  const int nprocs = 8;
  const auto pg = mpl::CartGrid3D::near_cubic(nprocs);
  constexpr std::size_t kN = 7, kM = 9, kL = 5;
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid3D<double> g(kN, kM, kL, pg, p.rank(), 2);
    g.init_from_global(&tagval3);
    mesh::ExchangePlan3D plan(pg, p.rank(), g);
    plan.begin_exchange(p, g);
    plan.end_exchange(p, g);
    const auto nx = static_cast<std::ptrdiff_t>(g.nx());
    const auto ny = static_cast<std::ptrdiff_t>(g.ny());
    const auto nz = static_cast<std::ptrdiff_t>(g.nz());
    for (std::ptrdiff_t i = -2; i < nx + 2; ++i)
      for (std::ptrdiff_t j = -2; j < ny + 2; ++j)
        for (std::ptrdiff_t k = -2; k < nz + 2; ++k) {
          const bool ghost =
              (i < 0 || i >= nx || j < 0 || j >= ny || k < 0 || k >= nz);
          if (!ghost) continue;
          const auto gi = static_cast<std::ptrdiff_t>(g.range(0).lo) + i;
          const auto gj = static_cast<std::ptrdiff_t>(g.range(1).lo) + j;
          const auto gk = static_cast<std::ptrdiff_t>(g.range(2).lo) + k;
          if (gi < 0 || gi >= static_cast<std::ptrdiff_t>(kN) || gj < 0 ||
              gj >= static_cast<std::ptrdiff_t>(kM) || gk < 0 ||
              gk >= static_cast<std::ptrdiff_t>(kL)) {
            continue;
          }
          ASSERT_EQ(g(i, j, k),
                    tagval3(static_cast<std::size_t>(gi),
                            static_cast<std::size_t>(gj),
                            static_cast<std::size_t>(gk)))
              << "rank " << p.rank() << " ghost (" << i << "," << j << "," << k
              << ")";
        }
  });
}

TEST(ExchangePlan3D, PeriodicWrapsAllAxes) {
  const int nprocs = 4;
  const auto pg = mpl::CartGrid3D::near_cubic(nprocs);
  constexpr std::size_t kN = 6, kM = 4, kL = 4;
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid3D<double> g(kN, kM, kL, pg, p.rank(), 1);
    g.init_from_global(&tagval3);
    mesh::ExchangePlan3D plan(
        pg, p.rank(), g,
        mesh::ExchangePlan3D::Options{mesh::Periodicity3{true, true, true},
                                      true, 0});
    plan.begin_exchange(p, g);
    plan.end_exchange(p, g);
    const auto nx = static_cast<std::ptrdiff_t>(g.nx());
    const auto ny = static_cast<std::ptrdiff_t>(g.ny());
    const auto nz = static_cast<std::ptrdiff_t>(g.nz());
    for (std::ptrdiff_t i = -1; i <= nx; ++i)
      for (std::ptrdiff_t j = -1; j <= ny; ++j)
        for (std::ptrdiff_t k = -1; k <= nz; ++k) {
          const bool ghost =
              (i < 0 || i >= nx || j < 0 || j >= ny || k < 0 || k >= nz);
          if (!ghost) continue;
          const std::size_t gi =
              wrap(static_cast<std::ptrdiff_t>(g.range(0).lo) + i, kN);
          const std::size_t gj =
              wrap(static_cast<std::ptrdiff_t>(g.range(1).lo) + j, kM);
          const std::size_t gk =
              wrap(static_cast<std::ptrdiff_t>(g.range(2).lo) + k, kL);
          ASSERT_EQ(g(i, j, k), tagval3(gi, gj, gk))
              << "rank " << p.rank() << " ghost (" << i << "," << j << "," << k
              << ")";
        }
  });
}

// ---------------------------------------------------- redistribution plans --

TEST(RedistributePlan, SplitPhaseRoundTripReusedAcrossTransforms) {
  const int nprocs = 4;
  constexpr std::size_t kN = 11, kM = 7;  // deliberately not divisible by P
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    mesh::RowsToColsPlan r2c(p.size(), p.rank(), kN, kM);
    mesh::ColsToRowsPlan c2r(p.size(), p.rank(), kN, kM);
    for (int iter = 0; iter < 3; ++iter) {
      const double shift = 1e7 * iter;
      mesh::RowDistributed<double> rows(kN, kM, p.size(), p.rank());
      rows.init_from_global([&](std::size_t r, std::size_t c) {
        return tagval(r, c) + shift;
      });
      mesh::ColDistributed<double> cols(kN, kM, p.size(), p.rank());
      r2c.begin_exchange(p, rows);
      // (a caller would compute here while the parts are in flight)
      r2c.end_exchange(p, cols);
      for (std::size_t c = 0; c < cols.cols_local(); ++c) {
        for (std::size_t r = 0; r < kN; ++r) {
          ASSERT_EQ(cols.at(r, c), tagval(r, cols.cols().lo + c) + shift);
        }
      }
      mesh::RowDistributed<double> rows2(kN, kM, p.size(), p.rank());
      c2r.begin_exchange(p, cols);
      c2r.end_exchange(p, rows2);
      for (std::size_t r = 0; r < rows2.rows_local(); ++r) {
        for (std::size_t c = 0; c < kM; ++c) {
          ASSERT_EQ(rows2.at(r, c), tagval(rows2.rows().lo + r, c) + shift);
        }
      }
    }
  });
}

// ------------------------------------------------------------ degenerate --

TEST(ExchangePlan, SingleRankNonPeriodicIsEmpty) {
  mpl::spmd_run(1, [&](mpl::Process& p) {
    const mpl::CartGrid2D pg(1, 1);
    Grid2D<double> g(6, 6, pg, p.rank(), 1);
    g.fill(3.0);
    mesh::ExchangePlan2D plan(pg, p.rank(), g);
    EXPECT_EQ(plan.transfer_count(), 0u);
    EXPECT_EQ(plan.local_copy_count(), 0u);
    plan.begin_exchange(p, g);
    plan.end_exchange(p, g);  // no-ops
  });
}

TEST(ExchangePlan, GhostWidthZeroIsEmpty) {
  mpl::spmd_run(2, [&](mpl::Process& p) {
    const mpl::CartGrid2D pg(2, 1);
    Grid2D<double> g(6, 6, pg, p.rank(), 0);
    mesh::ExchangePlan2D plan(pg, p.rank(), g);
    EXPECT_EQ(plan.transfer_count(), 0u);
    plan.begin_exchange(p, g);
    plan.end_exchange(p, g);
  });
}

// ------------------------------------------------------------ shape guard --

TEST(ExchangePlan, MismatchedGridShapeThrowsTyped) {
  // A plan compiled for one grid shape must refuse — with the typed
  // PlanShapeMismatch, before any message goes out — a grid whose local
  // extents or ghost width differ; a shape-identical grid still works.
  mpl::spmd_run(2, [&](mpl::Process& p) {
    const mpl::CartGrid2D pg(2, 1);
    Grid2D<double> g(8, 6, pg, p.rank(), 1);
    g.fill(1.0);
    mesh::ExchangePlan2D plan(pg, p.rank(), g);

    Grid2D<double> wrong_extent(12, 6, pg, p.rank(), 1);
    EXPECT_THROW(plan.begin_exchange(p, wrong_extent),
                 mesh::PlanShapeMismatch);
    Grid2D<double> wrong_ghost(8, 6, pg, p.rank(), 2);
    EXPECT_THROW(plan.begin_exchange(p, wrong_ghost),
                 mesh::PlanShapeMismatch);
    // PlanShapeMismatch is a logic_error (catchable as such).
    try {
      plan.begin_exchange(p, wrong_extent);
      FAIL() << "expected PlanShapeMismatch";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find("shape"), std::string::npos);
    }
    // The failed begins must not have left a round in flight: the plan is
    // still usable with a conforming grid.
    plan.begin_exchange(p, g);
    plan.end_exchange(p, g);
  });
}

TEST(ExchangePlan3D, MismatchedGridShapeThrowsTyped) {
  mpl::spmd_run(2, [&](mpl::Process& p) {
    const mpl::CartGrid3D pg(2, 1, 1);
    Grid3D<double> g(8, 6, 4, pg, p.rank(), 1);
    mesh::ExchangePlan3D plan(pg, p.rank(), g);
    Grid3D<double> wrong(8, 6, 8, pg, p.rank(), 1);
    EXPECT_THROW(plan.begin_exchange(p, wrong), mesh::PlanShapeMismatch);
    plan.begin_exchange(p, g);
    plan.end_exchange(p, g);
  });
}

}  // namespace
