// Robustness tests for the fault-injection substrate (mpl/fault.hpp), per-job
// deadlines/cancellation (mpl/job.hpp), and the engine's stuck-job watchdog:
//
//   - FaultPlan unit behavior: deterministic draws, (rank, op) targeting,
//     disabled-by-default zero effect;
//   - typed teardown: JobDeadlineExceeded / JobCancelled / JobStalled
//     surface instead of bare WorldAborted, with bounded latency;
//   - the soak: hundreds of mixed jobs (poisson, pipeline, bnb, collectives)
//     under randomized seeded fault plans, asserting the engine returns to a
//     clean parked state after every injected failure and that the next
//     fault-free job is bitwise-identical to the no-fault reference.
//
// PPA_FAULT_SOAK_JOBS overrides the soak's job count (default 200; CI's
// TSan leg runs a reduced count).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "apps/poisson/poisson.hpp"
#include "core/branch_and_bound.hpp"
#include "core/pipeline.hpp"
#include "mpl/engine.hpp"
#include "mpl/fault.hpp"
#include "mpl/job.hpp"

namespace {

using namespace ppa;
using namespace ppa::mpl;
using namespace std::chrono_literals;

// ------------------------------------------------------------- FaultPlan --

TEST(FaultPlan, DisabledByDefault) {
  EXPECT_FALSE(fault_injection_active());
  EXPECT_EQ(fault_point(FaultSite::kMailboxPush, 0), FaultAction::kNone);
  EXPECT_EQ(fault_point(FaultSite::kRankBody, 3), FaultAction::kNone);
}

TEST(FaultPlan, ScopeInstallsAndRestores) {
  FaultPlan plan(1, {});
  {
    FaultInjectionScope scope(plan);
    EXPECT_TRUE(fault_injection_active());
  }
  EXPECT_FALSE(fault_injection_active());
}

TEST(FaultPlan, TargetsRankAndOpCount) {
  // One-shot crash of rank 1 at its third barrier (op counts start at 0).
  FaultPlan plan(7, {FaultRule{.site = FaultSite::kBarrier,
                              .rank = 1,
                              .at_op = 2,
                              .kind = FaultKind::kThrow}});
  for (int op = 0; op < 5; ++op) {
    EXPECT_EQ(plan.visit(FaultSite::kBarrier, 0), FaultAction::kNone)
        << "rank 0 must never match a rank-1 rule";
  }
  EXPECT_EQ(plan.visit(FaultSite::kBarrier, 1), FaultAction::kNone);  // op 0
  EXPECT_EQ(plan.visit(FaultSite::kBarrier, 1), FaultAction::kNone);  // op 1
  EXPECT_THROW(plan.visit(FaultSite::kBarrier, 1), FaultInjected);    // op 2
  EXPECT_EQ(plan.visit(FaultSite::kBarrier, 1), FaultAction::kNone)
      << "a period-0 rule is one-shot";
  EXPECT_EQ(plan.fired(0), 1u);
}

TEST(FaultPlan, PeriodicRuleKeepsFiring) {
  FaultPlan plan(7, {FaultRule{.site = FaultSite::kMailboxPush,
                              .rank = -1,
                              .at_op = 1,
                              .period = 3,
                              .kind = FaultKind::kDrop}});
  std::vector<int> dropped;
  for (int op = 0; op < 8; ++op) {
    if (plan.visit(FaultSite::kMailboxPush, 2) == FaultAction::kDropMessage) {
      dropped.push_back(op);
    }
  }
  EXPECT_EQ(dropped, (std::vector<int>{1, 4, 7}));
}

TEST(FaultPlan, ProbabilityDrawsAreDeterministic) {
  const auto run = [](std::uint64_t seed) {
    FaultPlan plan(seed, {FaultRule{.site = FaultSite::kMailboxPop,
                                   .rank = -1,
                                   .at_op = 0,
                                   .period = 1,
                                   .probability = 0.5,
                                   .kind = FaultKind::kDrop}});
    std::string pattern;
    for (int op = 0; op < 64; ++op) {
      pattern += plan.visit(FaultSite::kMailboxPop, 0) ==
                         FaultAction::kDropMessage
                     ? '1'
                     : '0';
    }
    return pattern;
  };
  const std::string a = run(42);
  EXPECT_EQ(a, run(42)) << "same seed, same decisions";
  EXPECT_NE(a, run(43)) << "different seed, different decisions";
  EXPECT_NE(a.find('1'), std::string::npos);
  EXPECT_NE(a.find('0'), std::string::npos);
}

// ------------------------------------------------- deadlines and cancels --

TEST(JobControl, DeadlineUnblocksWedgedRecvWithTypedError) {
  Engine engine(2);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(engine.run(
                   2,
                   [](Process& p) {
                     (void)p.recv_value<int>((p.rank() + 1) % 2, 99);  // wedge
                   },
                   JobOptions{.deadline = 100ms}),
               JobDeadlineExceeded);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Teardown latency bound: deadline + monitor tick + generous CI slack.
  EXPECT_LT(elapsed, 2s) << "wedged job must be torn down promptly";
  // The engine parks cleanly and accepts the next job immediately.
  const auto sum = engine.run(2, [](Process& p) {
    (void)p.allreduce(p.rank() + 1, SumOp{});
  });
  EXPECT_GT(sum.messages, 0u);
}

TEST(JobControl, CancelReleasesRanksBlockedInBarrier) {
  Engine engine(4);
  CancelSource cancel;
  std::thread firer([&] {
    std::this_thread::sleep_for(20ms);
    cancel.cancel();
  });
  EXPECT_THROW(engine.run(
                   4,
                   [](Process& p) {
                     if (p.rank() != 0) p.barrier();  // never completes
                     while (!p.cancelled()) std::this_thread::sleep_for(1ms);
                     p.throw_if_cancelled();
                   },
                   JobOptions{.cancel = cancel.token()}),
               JobCancelled);
  firer.join();
  EXPECT_EQ(engine.world().tag_space().outstanding(), 0);
}

TEST(JobControl, CooperativePollExitsComputeLoop) {
  Engine engine(2);
  CancelSource cancel;
  std::atomic<int> polls{0};
  std::thread firer([&] {
    std::this_thread::sleep_for(10ms);
    cancel.cancel();
  });
  EXPECT_THROW(engine.run(
                   2,
                   [&](Process& p) {
                     // Pure compute: never blocks in the substrate, so only
                     // the cooperative flag can stop it.
                     while (!p.cancelled()) {
                       polls.fetch_add(1);
                       std::this_thread::sleep_for(500us);
                     }
                     throw JobCancelled{};
                   },
                   JobOptions{.cancel = cancel.token()}),
               JobCancelled);
  firer.join();
  EXPECT_GT(polls.load(), 0);
}

TEST(JobControl, WatchdogRescuesDroppedMessage) {
  Engine engine(2);
  // Drop rank 0's first send: rank 1's recv wedges with no failing rank —
  // only the no-progress watchdog can detect this.
  FaultPlan plan(3, {FaultRule{.site = FaultSite::kMailboxPush,
                              .rank = 0,
                              .at_op = 0,
                              .kind = FaultKind::kDrop}});
  const auto t0 = std::chrono::steady_clock::now();
  {
    FaultInjectionScope scope(plan);
    EXPECT_THROW(engine.run(
                     2,
                     [](Process& p) {
                       if (p.rank() == 0) p.send_value(1, 5, 42);
                       if (p.rank() == 1) (void)p.recv_value<int>(0, 5);
                     },
                     JobOptions{.watchdog_grace = 150ms}),
                 JobStalled);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 2s);
  EXPECT_EQ(plan.fired(0), 1u);
  // Fault-free follow-up delivers the message that was "lost".
  int got = -1;
  engine.run(2, [&](Process& p) {
    if (p.rank() == 0) p.send_value(1, 5, 42);
    if (p.rank() == 1) got = p.recv_value<int>(0, 5);
  });
  EXPECT_EQ(got, 42);
}

TEST(JobControl, OptionFreeJobsUnaffectedByMonitor) {
  Engine engine(2);
  for (int i = 0; i < 20; ++i) {
    const auto trace = engine.run(2, [](Process& p) {
      (void)p.allreduce(p.rank(), SumOp{});
    });
    EXPECT_GT(trace.messages, 0u);
  }
  EXPECT_EQ(engine.jobs_run(), 20u);
}

TEST(JobControl, InjectedRankCrashIsDeterministic) {
  // kRankBody op counts advance once per rank per job, so "rank 2, op 1"
  // crashes exactly the second job — on every run of this test.
  for (int attempt = 0; attempt < 2; ++attempt) {
    Engine engine(4);
    FaultPlan plan(11, {FaultRule{.site = FaultSite::kRankBody,
                                 .rank = 2,
                                 .at_op = 1,
                                 .kind = FaultKind::kThrow}});
    FaultInjectionScope scope(plan);
    const auto body = [](Process& p) { (void)p.allgather_value(p.rank()); };
    engine.run(4, body);  // job 1: op 0, no fault
    EXPECT_THROW(engine.run(4, body), FaultInjected);
    engine.run(4, body);  // one-shot rule: engine back to clean runs
    EXPECT_EQ(engine.jobs_run(), 3u);
  }
}

TEST(JobControl, InjectedSendFailureSurfacesAsRootCause) {
  Engine engine(4);
  FaultPlan plan(5, {FaultRule{.site = FaultSite::kMailboxPush,
                              .rank = 1,
                              .at_op = 0,
                              .kind = FaultKind::kThrow}});
  FaultInjectionScope scope(plan);
  // Even with a deadline armed, the injected failure is the root cause the
  // submitter sees — not a WorldAborted, not a deadline.
  EXPECT_THROW(engine.run(
                   4,
                   [](Process& p) { (void)p.allreduce(p.rank(), SumOp{}); },
                   JobOptions{.deadline = 5s}),
               FaultInjected);
}

TEST(JobControl, PipelineCancellationPropagatesThroughCreditWaits) {
  Engine engine(4);
  CancelSource cancel;
  std::atomic<long> produced{0};
  // Unbounded source against a sink slow enough that the producer lives in
  // credit waits; only cancellation ends the run.
  auto plan = pipeline::source([&]() -> std::optional<int> {
                produced.fetch_add(1);
                return 1;
              }) |
              pipeline::stage([](int v) { return v + 1; }) |
              pipeline::sink([](int) { std::this_thread::sleep_for(2ms); });
  std::thread firer([&] {
    std::this_thread::sleep_for(50ms);
    cancel.cancel();
  });
  EXPECT_THROW(plan.run_engine(engine, pipeline::default_config(), 0,
                               JobOptions{.cancel = cancel.token()}),
               JobCancelled);
  firer.join();
  EXPECT_GT(produced.load(), 0);
  EXPECT_EQ(engine.world().tag_space().outstanding(), 0)
      << "cancelled pipeline must still release its tag block";
  // The engine accepts a clean pipeline right after the cancelled one.
  long total = 0;
  int next = 0;
  auto clean = pipeline::source([&]() -> std::optional<int> {
                 return next < 8 ? std::optional<int>(next++) : std::nullopt;
               }) |
               pipeline::stage([](int v) { return v * 2; }) |
               pipeline::sink([&](int v) { total += v; });
  clean.run_engine(engine);
  EXPECT_EQ(total, 56);
}

// ------------------------------------------------------------------ soak --

/// One deterministic reference job: fixed-input double allreduce_vec plus a
/// neighbor exchange. Returns the result bits and the job trace, both of
/// which must be identical across fault-free runs on a clean engine.
struct CheckJobResult {
  std::vector<double> bits;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

CheckJobResult run_check_job(Engine& engine) {
  CheckJobResult out;
  std::vector<double> reduced;
  const auto trace = engine.run(4, [&](Process& p) {
    std::vector<double> local(64);
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = 1.0 / (1.0 + static_cast<double>(i) +
                        static_cast<double>(p.rank()));
    }
    const int right = (p.rank() + 1) % p.size();
    const int left = (p.rank() - 1 + p.size()) % p.size();
    p.send_value(right, 7, static_cast<double>(p.rank()) * 0.25);
    local[0] += p.recv_value<double>(left, 7);
    auto sum = p.allreduce_vec(std::span<const double>(local), SumOp{});
    if (p.rank() == 0) reduced = std::move(sum);
  });
  out.bits = std::move(reduced);
  out.messages = trace.messages;
  out.bytes = trace.bytes;
  return out;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Randomized-but-seeded fault plan for one soak round: always some delay
/// pressure, sometimes message drops, rank crashes, or send failures.
FaultPlan make_soak_plan(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<FaultRule> rules;
  const auto pick_site = [&] {
    constexpr FaultSite kSites[] = {FaultSite::kMailboxPush,
                                    FaultSite::kMailboxPop, FaultSite::kBarrier,
                                    FaultSite::kCollective};
    return kSites[rng() % 4];
  };
  const int delays = 1 + static_cast<int>(rng() % 2);
  for (int i = 0; i < delays; ++i) {
    rules.push_back(FaultRule{.site = pick_site(),
                              .rank = static_cast<int>(rng() % 4),
                              .at_op = rng() % 16,
                              .period = 8 + rng() % 24,
                              .probability = 0.5,
                              .kind = FaultKind::kDelay,
                              .delay_us = 20 + static_cast<std::uint32_t>(rng() % 180)});
  }
  if (rng() % 10 < 4) {  // 40%: wire loss (wedges a receiver; watchdog rescues)
    rules.push_back(FaultRule{.site = FaultSite::kMailboxPush,
                              .rank = static_cast<int>(rng() % 4),
                              .at_op = rng() % 32,
                              .kind = FaultKind::kDrop});
  }
  if (rng() % 10 < 3) {  // 30%: a rank body crashes every few jobs
    rules.push_back(FaultRule{.site = FaultSite::kRankBody,
                              .rank = static_cast<int>(rng() % 4),
                              .at_op = rng() % 4,
                              .period = 5 + rng() % 7,
                              .kind = FaultKind::kThrow});
  }
  if (rng() % 10 < 3) {  // 30%: a send fails outright
    rules.push_back(FaultRule{.site = FaultSite::kMailboxPush,
                              .rank = static_cast<int>(rng() % 4),
                              .at_op = 4 + rng() % 40,
                              .kind = FaultKind::kThrow});
  }
  return FaultPlan(seed, std::move(rules));
}

int soak_job_count() {
  const char* env = std::getenv("PPA_FAULT_SOAK_JOBS");
  if (env != nullptr && env[0] != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

TEST(FaultSoak, MixedJobsUnderRandomizedPlansLeaveEngineClean) {
  Engine engine(4);

  // Fault-free references, computed once on the clean engine.
  const CheckJobResult reference = run_check_job(engine);
  ASSERT_FALSE(reference.bits.empty());

  app::PoissonProblem poisson;
  poisson.nx = 17;
  poisson.ny = 17;
  poisson.tolerance = 1e-3;
  poisson.max_iters = 500;
  poisson.f = [](double x, double y) { return x - y; };
  poisson.g = [](double x, double y) { return x * y; };
  const auto poisson_ref = app::poisson_spmd(poisson, engine, 4);
  ASSERT_GT(poisson_ref.iterations, 0u);

  struct TernarySpec {
    struct Node {
      int depth = 0;
      int sum = 0;
    };
    using node_type = Node;
    [[nodiscard]] double bound(const Node& n) const { return n.sum; }
    [[nodiscard]] bool is_leaf(const Node& n) const { return n.depth == 3; }
    [[nodiscard]] double leaf_value(const Node& n) const { return n.sum; }
    [[nodiscard]] std::vector<Node> branch(const Node& n) const {
      std::vector<Node> kids;
      for (int v = 0; v < 3; ++v) kids.push_back({n.depth + 1, n.sum + v});
      return kids;
    }
  };
  TernarySpec bnb_spec;

  const int total_jobs = soak_job_count();
  const int plans = 20;
  const int jobs_per_plan = (total_jobs + plans - 1) / plans;
  // Safety net on every faulted job: nothing may wedge longer than the
  // watchdog grace (no-progress) or the deadline (slow-but-alive).
  const JobOptions safety{.deadline = 5s, .watchdog_grace = 250ms};

  int failures_seen = 0;
  int jobs_submitted = 0;
  for (int plan_index = 0; plan_index < plans; ++plan_index) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(plan_index);
    FaultPlan plan = make_soak_plan(seed);

    for (int j = 0; j < jobs_per_plan; ++j) {
      ++jobs_submitted;
      JobOptions options = safety;
      CancelSource cancel;  // fresh per job so earlier fires don't linger
      std::thread firer;
      if (jobs_submitted % 11 == 0) {
        // Cancellation in the mix: fired from a separate thread mid-job.
        options.cancel = cancel.token();
        firer = std::thread([&cancel] {
          std::this_thread::sleep_for(2ms);
          cancel.cancel();
        });
      } else if (jobs_submitted % 7 == 0) {
        options.deadline = 15ms;  // deadline expiry in the mix
      }

      bool failed = false;
      try {
        const FaultInjectionScope scope(plan);
        switch (j % 4) {
          case 0: {
            const auto r =
                app::poisson_spmd(poisson, engine, 2 + 2 * (j % 2), options);
            (void)r;
            break;
          }
          case 1: {
            long total = 0;
            int next = 0;
            auto pl = pipeline::source([&]() -> std::optional<int> {
                        return next < 8 ? std::optional<int>(next++)
                                        : std::nullopt;
                      }) |
                      pipeline::stage([](int v) { return v + 1; }) |
                      pipeline::sink([&](int v) { total += v; });
            pl.run_engine(engine, pipeline::default_config(), 0, options);
            break;
          }
          case 2: {
            (void)bnb::solve_engine(bnb_spec, engine, TernarySpec::Node{}, 4,
                                    16, 2, nullptr, options);
            break;
          }
          default:
            engine.run(
                4, [](Process& p) { (void)p.allgather_value(p.rank()); },
                options);
            break;
        }
      } catch (const FaultInjected&) {
        failed = true;
      } catch (const JobStalled&) {
        failed = true;
      } catch (const JobDeadlineExceeded&) {
        failed = true;
      } catch (const JobCancelled&) {
        failed = true;
      }
      // Any other exception type escapes and fails the test: the engine
      // must only ever surface the typed failure classes above.
      if (firer.joinable()) firer.join();
      if (failed) ++failures_seen;

      // Parked-state invariants after every job, failed or not.
      ASSERT_EQ(engine.world().tag_space().outstanding(), 0)
          << "plan " << seed << " job " << j << " leaked tags";

      if (failed) {
        // A fault-free job immediately after an injected failure must be
        // bitwise-identical to the clean reference (zeroed trace included).
        const CheckJobResult check = run_check_job(engine);
        ASSERT_TRUE(bitwise_equal(check.bits, reference.bits))
            << "plan " << seed << " job " << j
            << ": post-failure job diverged from the fault-free reference";
        ASSERT_EQ(check.messages, reference.messages);
        ASSERT_EQ(check.bytes, reference.bytes);
      }
    }

    // End of plan: full poisson solve, bitwise against the reference field.
    const auto clean = app::poisson_spmd(poisson, engine, 4);
    ASSERT_EQ(clean.iterations, poisson_ref.iterations);
    ASSERT_EQ(clean.u.rows(), poisson_ref.u.rows());
    ASSERT_TRUE(std::memcmp(clean.u.data(), poisson_ref.u.data(),
                            clean.u.size() * sizeof(double)) == 0)
        << "plan " << seed << ": poisson field diverged after the fault round";
  }

  EXPECT_GE(jobs_submitted, total_jobs);
  EXPECT_GT(failures_seen, 0) << "the soak never injected a visible fault — "
                                 "plans are too weak to exercise recovery";
  EXPECT_EQ(engine.world().tag_space().outstanding(), 0);
}

}  // namespace
