// Tests for the layout-aware kernel layer (meshspectral/field.hpp,
// meshspectral/kernels.hpp) and the padded grid storage underneath it:
//
//   * layout: padded row/pencil strides, 64-byte row alignment, view/grid
//     aliasing, SoA<->AoS round trips;
//   * halo correctness on padded storage: pack/unpack round trips and a
//     ghost-width-2 exchange regression (the padded stride must never leak
//     into the wire format);
//   * the bitwise-equality battery: for poisson, euler2d, and fdtd3d, the
//     kernel sweeps must reproduce the legacy per-point sweeps exactly —
//     at np in {1, 2, 4, 8}, with odd extents, and on block-set drivers
//     with non-divisible block shapes.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>

#include "apps/cfd/euler2d.hpp"
#include "apps/em/fdtd3d.hpp"
#include "apps/poisson/poisson.hpp"
#include "meshspectral/meshspectral.hpp"
#include "mpl/spmd.hpp"

namespace {

using namespace ppa;

bool is_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kGridAlignment == 0;
}

// ------------------------------------------------------------- layout --

TEST(KernelLayout, PaddedStrideRoundsToCacheLine) {
  EXPECT_EQ(padded_stride<double>(1), 8u);
  EXPECT_EQ(padded_stride<double>(8), 8u);
  EXPECT_EQ(padded_stride<double>(9), 16u);
  EXPECT_EQ(padded_stride<float>(17), 32u);
  // 24-byte elements: quantum is 64/gcd(64,24) = 8 elements.
  struct S24 { double a, b, c; };
  EXPECT_EQ(padded_stride<S24>(5), 8u);
  EXPECT_EQ(padded_stride<S24>(5) * sizeof(S24) % kGridAlignment, 0u);
}

TEST(KernelLayout, Grid2DRowsAreAlignedAndPadded) {
  // Odd ny and ghost 2: the nominal row width (53 + 4 = 57) is not a
  // multiple of 8 doubles, so padding must kick in.
  mesh::Grid2D<double> g(67, 53, 2);
  EXPECT_GE(g.row_stride(), g.ny() + 2 * g.ghost());
  EXPECT_EQ(g.row_stride() * sizeof(double) % kGridAlignment, 0u);
  for (std::ptrdiff_t i = -2; i < static_cast<std::ptrdiff_t>(g.nx()) + 2; ++i) {
    EXPECT_TRUE(is_aligned(g.row(i) - g.ghost())) << "row " << i;
  }
  // row(i)[j] and operator() address the same element.
  g.init_from_global([](std::size_t gi, std::size_t gj) {
    return static_cast<double>(gi * 1000 + gj);
  });
  for (std::size_t i = 0; i < g.nx(); ++i) {
    for (std::size_t j = 0; j < g.ny(); ++j) {
      EXPECT_EQ(&g.row(static_cast<std::ptrdiff_t>(i))[j],
                &g(static_cast<std::ptrdiff_t>(i), static_cast<std::ptrdiff_t>(j)));
    }
  }
}

TEST(KernelLayout, Grid3DPencilsAreAlignedAndPadded) {
  mesh::Grid3D<double> g(9, 7, 11, 1);
  EXPECT_GE(g.pencil_stride(), g.nz() + 2 * g.ghost());
  EXPECT_EQ(g.pencil_stride() * sizeof(double) % kGridAlignment, 0u);
  for (std::ptrdiff_t i = -1; i <= static_cast<std::ptrdiff_t>(g.nx()); ++i) {
    for (std::ptrdiff_t j = -1; j <= static_cast<std::ptrdiff_t>(g.ny()); ++j) {
      EXPECT_TRUE(is_aligned(g.pencil(i, j) - g.ghost()));
    }
  }
  g.init_from_global([](std::size_t a, std::size_t b, std::size_t c) {
    return static_cast<double>(a * 10000 + b * 100 + c);
  });
  for (std::size_t i = 0; i < g.nx(); ++i)
    for (std::size_t j = 0; j < g.ny(); ++j)
      for (std::size_t k = 0; k < g.nz(); ++k)
        EXPECT_EQ(&g.pencil(static_cast<std::ptrdiff_t>(i),
                            static_cast<std::ptrdiff_t>(j))[k],
                  &g(static_cast<std::ptrdiff_t>(i), static_cast<std::ptrdiff_t>(j),
                     static_cast<std::ptrdiff_t>(k)));
}

TEST(KernelLayout, FieldViewAliasesGridStorage) {
  mesh::Grid2D<double> g(12, 10, 1);
  auto v = mesh::field_view(g);
  EXPECT_EQ(v.stride, g.row_stride());
  v(3, 4) = 42.0;
  EXPECT_EQ(g(3, 4), 42.0);
  g(-1, -1) = 7.0;
  EXPECT_EQ(v(-1, -1), 7.0);
  const auto cv = mesh::field_view(std::as_const(g));
  EXPECT_EQ(cv(3, 4), 42.0);
}

TEST(KernelLayout, SoAFieldRoundTripsAoS) {
  constexpr std::size_t kNC = 3;
  mesh::Grid2D<std::array<double, kNC>> aos(9, 7, 2);
  // Fill interior AND ghosts with distinct values.
  for (std::ptrdiff_t i = -2; i < 11; ++i) {
    for (std::ptrdiff_t j = -2; j < 9; ++j) {
      for (std::size_t c = 0; c < kNC; ++c) {
        aos(i, j)[c] = static_cast<double>((i + 3) * 1000 + (j + 3) * 10 + c);
      }
    }
  }
  mesh::SoAField2D<double> soa(aos.nx(), aos.ny(), aos.ghost(), kNC);
  soa.from_aos(aos);
  for (std::size_t c = 0; c < kNC; ++c) {
    auto v = soa.component(c);
    EXPECT_TRUE(is_aligned(v.row(-2) - 2)) << "component " << c;
    EXPECT_EQ(v(0, 0), aos(0, 0)[c]);
    EXPECT_EQ(v(-2, -2), aos(-2, -2)[c]);
    EXPECT_EQ(v(8, 6), aos(8, 6)[c]);
  }
  mesh::Grid2D<std::array<double, kNC>> back(9, 7, 2);
  soa.to_aos(back);
  for (std::ptrdiff_t i = -2; i < 11; ++i)
    for (std::ptrdiff_t j = -2; j < 9; ++j) EXPECT_EQ(back(i, j), aos(i, j));
}

// -------------------------------------------- halo paths on padded rows --

TEST(KernelPadding, PackUnpackRoundTripWithGhost2) {
  mesh::Grid2D<double> src(13, 11, 2), dst(13, 11, 2);
  src.init_from_global([](std::size_t gi, std::size_t gj) {
    return static_cast<double>(gi) * 97.0 + static_cast<double>(gj) * 1.5;
  });
  // Regions deliberately spanning ghost coordinates and odd widths.
  const struct { std::ptrdiff_t i0, i1, j0, j1; } regions[] = {
      {0, 13, 0, 11},    // whole interior
      {-2, 2, -2, 11},   // low-edge strip incl. ghosts
      {11, 13, 9, 13},   // high corner incl. ghosts
      {3, 4, -2, 13},    // single full row
  };
  for (const auto& r : regions) {
    // Make ghost source values distinct too.
    for (std::ptrdiff_t i = r.i0; i < r.i1; ++i)
      for (std::ptrdiff_t j = r.j0; j < r.j1; ++j)
        src(i, j) = static_cast<double>(i * 100 + j);
    const auto buf = src.pack_region(r.i0, r.i1, r.j0, r.j1);
    ASSERT_EQ(buf.size(),
              static_cast<std::size_t>((r.i1 - r.i0) * (r.j1 - r.j0)));
    dst.unpack_region(r.i0, r.i1, r.j0, r.j1, buf);
    for (std::ptrdiff_t i = r.i0; i < r.i1; ++i)
      for (std::ptrdiff_t j = r.j0; j < r.j1; ++j)
        EXPECT_EQ(dst(i, j), src(i, j)) << i << "," << j;
  }
}

TEST(KernelPadding, Grid3DPackUnpackRoundTrip) {
  mesh::Grid3D<double> src(6, 5, 7, 1), dst(6, 5, 7, 1);
  src.init_from_global([](std::size_t a, std::size_t b, std::size_t c) {
    return static_cast<double>(a * 100 + b * 10 + c);
  });
  const auto buf = src.pack_region(-1, 6, 0, 5, -1, 8);
  ASSERT_EQ(buf.size(), 7u * 5u * 9u);
  dst.unpack_region(-1, 6, 0, 5, -1, 8, buf);
  for (std::ptrdiff_t i = -1; i < 6; ++i)
    for (std::ptrdiff_t j = 0; j < 5; ++j)
      for (std::ptrdiff_t k = -1; k < 8; ++k)
        EXPECT_EQ(dst(i, j, k), src(i, j, k));
}

TEST(KernelPadding, ExchangeGhost2OnPaddedRows) {
  // Regression: with padded rows and ghost width 2, a full plan exchange
  // must land every ghost cell on the value the owning rank holds — i.e.
  // the padded stride stays out of the wire format. Odd global extents so
  // sections have different row strides/padding amounts.
  constexpr int kP = 4;
  const auto pgrid = mpl::CartGrid2D::near_square(kP);
  const auto f = [](std::size_t gi, std::size_t gj) {
    return static_cast<double>(gi) * 131.0 + static_cast<double>(gj) * 0.25;
  };
  mpl::spmd_run(kP, [&](mpl::Process& p) {
    mesh::Grid2D<double> g(21, 17, pgrid, p.rank(), 2);
    g.init_from_global(f);
    mesh::ExchangePlan2D plan(pgrid, p.rank(), g,
                              mesh::ExchangePlan2D::Options{{}, true, 0});
    plan.begin_exchange(p, g);
    plan.end_exchange(p, g);
    const auto gd = static_cast<std::ptrdiff_t>(g.ghost());
    for (std::ptrdiff_t i = -gd; i < static_cast<std::ptrdiff_t>(g.nx()) + gd; ++i) {
      for (std::ptrdiff_t j = -gd; j < static_cast<std::ptrdiff_t>(g.ny()) + gd; ++j) {
        const auto gi = static_cast<std::ptrdiff_t>(g.x_range().lo) + i;
        const auto gj = static_cast<std::ptrdiff_t>(g.y_range().lo) + j;
        const bool inside = gi >= 0 && gi < 21 && gj >= 0 && gj < 17;
        if (!inside) continue;  // off-domain ghosts stay untouched
        EXPECT_EQ(g(i, j), f(static_cast<std::size_t>(gi),
                             static_cast<std::size_t>(gj)))
            << "rank " << p.rank() << " at (" << i << "," << j << ")";
      }
    }
  });
}

// ------------------------------------------------ jacobi kernel parity --

TEST(KernelSweeps, TiledJacobiMatchesNaiveAndLegacyBitwise) {
  // Odd extents and a tiny tile force ragged tiles; all three sweeps must
  // agree bitwise because each output element sees the same expression.
  mesh::Grid2D<double> in(37, 29, 1), f(37, 29, 1);
  mesh::Grid2D<double> out_legacy(37, 29, 1), out_rows(37, 29, 1),
      out_tiled(37, 29, 1);
  in.init_from_global([](std::size_t gi, std::size_t gj) {
    return std::sin(static_cast<double>(gi) * 0.7) +
           std::cos(static_cast<double>(gj) * 1.3);
  });
  f.init_from_global([](std::size_t gi, std::size_t gj) {
    return static_cast<double>(gi + gj) * 0.01;
  });
  const double h2 = 0.015625;
  const mesh::Region2 r{1, 36, 1, 28};

  mesh::for_region(r, [&](std::ptrdiff_t i, std::ptrdiff_t j) {
    out_legacy(i, j) =
        (in(i - 1, j) + in(i + 1, j) + in(i, j - 1) + in(i, j + 1) -
         h2 * f(i, j)) *
        0.25;
  });
  const auto iv = mesh::field_view(std::as_const(in));
  const auto fv = mesh::field_view(std::as_const(f));
  mesh::kern::jacobi_sweep(mesh::field_view(out_rows), iv, fv, h2, r);
  mesh::kern::jacobi_sweep_tiled(mesh::field_view(out_tiled), iv, fv, h2, r,
                                 /*tile_j=*/7);

  for (std::ptrdiff_t i = r.i0; i < r.i1; ++i) {
    for (std::ptrdiff_t j = r.j0; j < r.j1; ++j) {
      EXPECT_EQ(out_rows(i, j), out_legacy(i, j)) << i << "," << j;
      EXPECT_EQ(out_tiled(i, j), out_legacy(i, j)) << i << "," << j;
    }
  }
}

// ------------------------------------- app batteries: kernel == legacy --

class KernelsP : public testing::TestWithParam<int> {};

TEST_P(KernelsP, PoissonKernelMatchesLegacyBitwise) {
  const int np = GetParam();
  app::PoissonProblem prob;
  prob.nx = 33;
  prob.ny = 27;  // odd, != nx: exercises ragged padding per section
  prob.tolerance = 1e-6;
  prob.g = [](double x, double y) { return x * x - y * y; };

  prob.sweep = mesh::SweepMode::kLegacy;
  const auto legacy = app::poisson_spmd(prob, np);
  prob.sweep = mesh::SweepMode::kKernel;
  const auto kernel = app::poisson_spmd(prob, np);

  EXPECT_EQ(legacy.iterations, kernel.iterations);
  EXPECT_EQ(legacy.final_diffmax, kernel.final_diffmax);
  ASSERT_EQ(legacy.u.rows(), kernel.u.rows());
  ASSERT_EQ(legacy.u.cols(), kernel.u.cols());
  for (std::size_t i = 0; i < legacy.u.rows(); ++i)
    for (std::size_t j = 0; j < legacy.u.cols(); ++j)
      EXPECT_EQ(legacy.u(i, j), kernel.u(i, j))
          << "np=" << np << " at (" << i << "," << j << ")";
}

TEST_P(KernelsP, EulerKernelMatchesLegacyBitwise) {
  const int np = GetParam();
  app::CfdConfig cfg;
  cfg.nx = 48;
  cfg.ny = 22;
  cfg.sweep = mesh::SweepMode::kLegacy;
  const auto legacy = app::run_shock_interface(cfg, 12, np);
  cfg.sweep = mesh::SweepMode::kKernel;
  const auto kernel = app::run_shock_interface(cfg, 12, np);
  ASSERT_EQ(legacy.rows(), kernel.rows());
  for (std::size_t i = 0; i < legacy.rows(); ++i)
    for (std::size_t j = 0; j < legacy.cols(); ++j)
      EXPECT_EQ(legacy(i, j), kernel(i, j))
          << "np=" << np << " at (" << i << "," << j << ")";
}

TEST_P(KernelsP, FdtdKernelMatchesLegacyBitwise) {
  const int np = GetParam();
  app::EmConfig cfg;
  cfg.n = 20;
  cfg.src_i = 5;
  cfg.src_j = 10;
  cfg.src_k = 10;
  cfg.sweep = mesh::SweepMode::kLegacy;
  const auto legacy = app::run_em_scattering(cfg, 6, np);
  cfg.sweep = mesh::SweepMode::kKernel;
  const auto kernel = app::run_em_scattering(cfg, 6, np);
  ASSERT_EQ(legacy.rows(), kernel.rows());
  for (std::size_t i = 0; i < legacy.rows(); ++i)
    for (std::size_t j = 0; j < legacy.cols(); ++j)
      EXPECT_EQ(legacy(i, j), kernel(i, j))
          << "np=" << np << " at (" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(NP, KernelsP, testing::Values(1, 2, 4, 8));

TEST(KernelBlocks, PoissonBlockDriverKernelMatchesLegacyBitwise) {
  // Non-divisible block shapes (3x2 blocks of a 31x23 grid on 2 ranks,
  // round-robin owners) through the same kernels.
  app::PoissonProblem prob;
  prob.nx = 31;
  prob.ny = 23;
  prob.tolerance = 1e-5;
  prob.g = [](double x, double y) { return x + 2.0 * y; };
  app::PoissonBlockConfig config;
  config.nbx = 3;
  config.nby = 2;
  config.owner = {0, 1, 1, 0, 1, 0};

  prob.sweep = mesh::SweepMode::kLegacy;
  const auto legacy = app::poisson_blocks_spmd(prob, 2, config);
  prob.sweep = mesh::SweepMode::kKernel;
  const auto kernel = app::poisson_blocks_spmd(prob, 2, config);
  const auto single = app::poisson_spmd(prob, 2);

  EXPECT_EQ(legacy.iterations, kernel.iterations);
  EXPECT_EQ(single.iterations, kernel.iterations);
  for (std::size_t i = 0; i < legacy.u.rows(); ++i)
    for (std::size_t j = 0; j < legacy.u.cols(); ++j) {
      EXPECT_EQ(legacy.u(i, j), kernel.u(i, j)) << i << "," << j;
      EXPECT_EQ(single.u(i, j), kernel.u(i, j)) << i << "," << j;
    }
}

TEST(KernelBlocks, EulerBlockDriverKernelMatchesLegacyBitwise) {
  app::CfdConfig cfg;
  cfg.nx = 40;
  cfg.ny = 18;
  app::CfdBlockConfig config;
  config.nbx = 2;
  config.nby = 3;
  config.owner = {0, 1, 0, 1, 0, 1};

  cfg.sweep = mesh::SweepMode::kLegacy;
  const auto legacy = app::run_shock_interface_blocks(cfg, 8, 2, config);
  cfg.sweep = mesh::SweepMode::kKernel;
  const auto kernel = app::run_shock_interface_blocks(cfg, 8, 2, config);
  const auto single = app::run_shock_interface(cfg, 8, 2);

  for (std::size_t i = 0; i < legacy.rows(); ++i)
    for (std::size_t j = 0; j < legacy.cols(); ++j) {
      EXPECT_EQ(legacy(i, j), kernel(i, j)) << i << "," << j;
      EXPECT_EQ(single(i, j), kernel(i, j)) << i << "," << j;
    }
}

}  // namespace
