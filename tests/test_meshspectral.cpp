// Tests for the mesh-spectral archetype: distributed grids (2-D/3-D), ghost
// boundary exchange (incl. corners and periodic variants), grid/reduction
// operations, row/column redistribution, replicated globals, and gather/
// scatter I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "meshspectral/meshspectral.hpp"
#include "mpl/spmd.hpp"

namespace {

using namespace ppa;
using mesh::Grid2D;
using mesh::Grid3D;

// Encode a global coordinate pair as a unique double for exchange checks.
double tagval(std::size_t gi, std::size_t gj) {
  return static_cast<double>(gi) * 1000.0 + static_cast<double>(gj);
}

// ----------------------------------------------------------------- Grid2D --

TEST(Grid2D, PartitionCoversGlobalGrid) {
  const mpl::CartGrid2D pg(2, 3);
  std::vector<std::vector<int>> owner(7, std::vector<int>(11, -1));
  for (int r = 0; r < pg.size(); ++r) {
    const Grid2D<double> g(7, 11, pg, r, 1);
    for (std::size_t i = g.x_range().lo; i < g.x_range().hi; ++i) {
      for (std::size_t j = g.y_range().lo; j < g.y_range().hi; ++j) {
        EXPECT_EQ(owner[i][j], -1) << "overlapping ownership";
        owner[i][j] = r;
      }
    }
  }
  for (const auto& row : owner) {
    for (int o : row) EXPECT_NE(o, -1) << "uncovered point";
  }
}

TEST(Grid2D, GhostIndexingDoesNotAliasInterior) {
  Grid2D<int> g(4, 4, mpl::CartGrid2D{1, 1}, 0, 2);
  g.fill(0);
  g(-2, -2) = 7;
  g(5, 5) = 9;
  for (std::ptrdiff_t i = 0; i < 4; ++i) {
    for (std::ptrdiff_t j = 0; j < 4; ++j) EXPECT_EQ(g(i, j), 0);
  }
}

TEST(Grid2D, InitFromGlobalUsesGlobalCoordinates) {
  const mpl::CartGrid2D pg(2, 2);
  for (int r = 0; r < 4; ++r) {
    Grid2D<double> g(6, 6, pg, r, 1);
    g.init_from_global(&tagval);
    for (std::size_t i = 0; i < g.nx(); ++i) {
      for (std::size_t j = 0; j < g.ny(); ++j) {
        EXPECT_EQ(g(static_cast<std::ptrdiff_t>(i), static_cast<std::ptrdiff_t>(j)),
                  tagval(g.x_range().lo + i, g.y_range().lo + j));
      }
    }
  }
}

TEST(Grid2D, PackUnpackRegionRoundtrip) {
  Grid2D<int> g(5, 5, mpl::CartGrid2D{1, 1}, 0, 1);
  g.init_from_global([](std::size_t i, std::size_t j) {
    return static_cast<int>(i * 10 + j);
  });
  const auto buf = g.pack_region(1, 4, 2, 5);
  ASSERT_EQ(buf.size(), 9u);
  Grid2D<int> h(5, 5, mpl::CartGrid2D{1, 1}, 0, 1);
  h.fill(-1);
  h.unpack_region(1, 4, 2, 5, buf);
  EXPECT_EQ(h(1, 2), 12);
  EXPECT_EQ(h(3, 4), 34);
  EXPECT_EQ(h(0, 0), -1);
}

// ------------------------------------------------------ boundary exchange --

class ExchangeP : public testing::TestWithParam<int> {};

TEST_P(ExchangeP, GhostsMatchNeighborInteriors) {
  const int nprocs = GetParam();
  const auto pg = mpl::CartGrid2D::near_square(nprocs);
  constexpr std::size_t kN = 12, kM = 10;
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid2D<double> g(kN, kM, pg, p.rank(), 1);
    g.init_from_global(&tagval);
    mesh::exchange_boundaries(p, pg, g);
    // Every ghost cell whose global coordinate is inside the domain must
    // hold the value the owning process wrote (corners included, thanks to
    // the two-phase exchange).
    const auto nx = static_cast<std::ptrdiff_t>(g.nx());
    const auto ny = static_cast<std::ptrdiff_t>(g.ny());
    for (std::ptrdiff_t i = -1; i <= nx; ++i) {
      for (std::ptrdiff_t j = -1; j <= ny; ++j) {
        const bool ghost = (i < 0 || i >= nx || j < 0 || j >= ny);
        if (!ghost) continue;
        const auto gi = static_cast<std::ptrdiff_t>(g.x_range().lo) + i;
        const auto gj = static_cast<std::ptrdiff_t>(g.y_range().lo) + j;
        if (gi < 0 || gi >= static_cast<std::ptrdiff_t>(kN) || gj < 0 ||
            gj >= static_cast<std::ptrdiff_t>(kM)) {
          continue;  // outside the global domain: application's concern
        }
        EXPECT_EQ(g(i, j), tagval(static_cast<std::size_t>(gi),
                                  static_cast<std::size_t>(gj)))
            << "rank " << p.rank() << " ghost (" << i << "," << j << ")";
      }
    }
  });
}

TEST_P(ExchangeP, PeriodicWrapsAround) {
  const int nprocs = GetParam();
  const auto pg = mpl::CartGrid2D::near_square(nprocs);
  constexpr std::size_t kN = 8, kM = 6;
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid2D<double> g(kN, kM, pg, p.rank(), 1);
    g.init_from_global(&tagval);
    mesh::exchange_boundaries_periodic(p, pg, g);
    const auto nx = static_cast<std::ptrdiff_t>(g.nx());
    const auto ny = static_cast<std::ptrdiff_t>(g.ny());
    for (std::ptrdiff_t i = -1; i <= nx; ++i) {
      for (std::ptrdiff_t j = -1; j <= ny; ++j) {
        const bool ghost = (i < 0 || i >= nx || j < 0 || j >= ny);
        if (!ghost) continue;
        const auto wrap = [](std::ptrdiff_t v, std::size_t n) {
          const auto m = static_cast<std::ptrdiff_t>(n);
          return static_cast<std::size_t>(((v % m) + m) % m);
        };
        const std::size_t gi =
            wrap(static_cast<std::ptrdiff_t>(g.x_range().lo) + i, kN);
        const std::size_t gj =
            wrap(static_cast<std::ptrdiff_t>(g.y_range().lo) + j, kM);
        EXPECT_EQ(g(i, j), tagval(gi, gj))
            << "rank " << p.rank() << " ghost (" << i << "," << j << ")";
      }
    }
  });
}

TEST_P(ExchangeP, ExchangeMessageCountMatchesTopology) {
  const int nprocs = GetParam();
  if (nprocs < 2) GTEST_SKIP();
  const auto pg = mpl::CartGrid2D::near_square(nprocs);
  mpl::TraceSnapshot trace;
  mpl::spmd_collect<int>(
      nprocs,
      [&](mpl::Process& p) {
        Grid2D<double> g(16, 16, pg, p.rank(), 1);
        mesh::exchange_boundaries(p, pg, g);
        return 0;
      },
      &trace);
  // One-round plan exchange: every adjacent pair of ranks — orthogonal
  // (x edges: (npx-1)*npy; y edges: npx*(npy-1)) and diagonal
  // (2*(npx-1)*(npy-1)) — carries exactly 2 messages (one each way).
  const auto pairs = static_cast<std::uint64_t>(
      (pg.npx() - 1) * pg.npy() + pg.npx() * (pg.npy() - 1) +
      2 * (pg.npx() - 1) * (pg.npy() - 1));
  EXPECT_EQ(trace.messages, 2 * pairs);
}

TEST_P(ExchangeP, MixedPeriodicityWrapsOnlyOneAxis) {
  // Periodic in x, open in y (the CFD scenario's configuration, mirrored).
  const int nprocs = GetParam();
  const auto pg = mpl::CartGrid2D::near_square(nprocs);
  constexpr std::size_t kN = 8, kM = 6;
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid2D<double> g(kN, kM, pg, p.rank(), 1);
    g.fill(-7.0);  // sentinel in all ghosts
    g.init_from_global(&tagval);
    mesh::exchange_boundaries_mixed(p, pg, g, mesh::Periodicity{true, false});
    const auto nx = static_cast<std::ptrdiff_t>(g.nx());
    const auto ny = static_cast<std::ptrdiff_t>(g.ny());
    for (std::ptrdiff_t i = -1; i <= nx; ++i) {
      for (std::ptrdiff_t j = -1; j <= ny; ++j) {
        const bool ghost = (i < 0 || i >= nx || j < 0 || j >= ny);
        if (!ghost) continue;
        const auto gi_raw = static_cast<std::ptrdiff_t>(g.x_range().lo) + i;
        const auto gj = static_cast<std::ptrdiff_t>(g.y_range().lo) + j;
        if (gj < 0 || gj >= static_cast<std::ptrdiff_t>(kM)) {
          // Open-y boundary ghosts (including x-wrapped corners beyond the
          // y extent) must be untouched.
          EXPECT_EQ(g(i, j), -7.0) << "rank " << p.rank() << " (" << i << ","
                                   << j << ")";
          continue;
        }
        const auto m = static_cast<std::ptrdiff_t>(kN);
        const auto gi = static_cast<std::size_t>(((gi_raw % m) + m) % m);
        EXPECT_EQ(g(i, j), tagval(gi, static_cast<std::size_t>(gj)))
            << "rank " << p.rank() << " (" << i << "," << j << ")";
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ExchangeP, testing::Values(1, 2, 3, 4, 6, 9),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

// -------------------------------------------------------------- grid ops --

TEST(GridOps, PointwiseAndStencil) {
  const mpl::CartGrid2D pg(1, 1);
  Grid2D<double> in(4, 4, pg, 0, 1), out(4, 4, pg, 0, 1);
  in.init_from_global([](std::size_t i, std::size_t j) {
    return static_cast<double>(i + j);
  });
  mesh::apply_pointwise(out, in, [](double v) { return 2.0 * v; });
  EXPECT_DOUBLE_EQ(out(2, 3), 10.0);

  Grid2D<double> lap(4, 4, pg, 0, 1);
  mesh::apply_stencil(lap, in, [](const Grid2D<double>& u, std::ptrdiff_t i,
                                  std::ptrdiff_t j) {
    return u(i - 1, j) + u(i + 1, j) + u(i, j - 1) + u(i, j + 1) - 4.0 * u(i, j);
  });
  // Interior point away from ghost zeros: i+j is harmonic, laplacian 0.
  EXPECT_DOUBLE_EQ(lap(1, 1), 0.0);
}

class ReduceP : public testing::TestWithParam<int> {};

TEST_P(ReduceP, DistributedSumAndMaxMatchDense) {
  const int nprocs = GetParam();
  const auto pg = mpl::CartGrid2D::near_square(nprocs);
  constexpr std::size_t kN = 9, kM = 13;
  const auto results = mpl::spmd_collect<std::pair<double, double>>(
      nprocs, [&](mpl::Process& p) {
        Grid2D<double> g(kN, kM, pg, p.rank(), 0);
        g.init_from_global([](std::size_t i, std::size_t j) {
          return std::sin(static_cast<double>(i * 31 + j * 7));
        });
        return std::make_pair(mesh::reduce_sum(p, g),
                              mesh::reduce_max(p, g, -1e300));
      });
  double expect_sum = 0.0, expect_max = -1e300;
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kM; ++j) {
      const double v = std::sin(static_cast<double>(i * 31 + j * 7));
      expect_sum += v;
      expect_max = std::max(expect_max, v);
    }
  }
  for (const auto& [sum, max] : results) {
    EXPECT_NEAR(sum, expect_sum, 1e-9);  // associativity reordering tolerance
    EXPECT_DOUBLE_EQ(max, expect_max);   // max is exact under reassociation
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ReduceP, testing::Values(1, 2, 3, 4, 5, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

// ----------------------------------------------------------- row/col dist --

class RowColP : public testing::TestWithParam<int> {};

TEST_P(RowColP, RedistributeRowsToColsAndBack) {
  const int nprocs = GetParam();
  constexpr std::size_t kN = 11, kM = 7;  // deliberately not divisible by P
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    mesh::RowDistributed<double> rows(kN, kM, p.size(), p.rank());
    rows.init_from_global(&tagval);

    mesh::ColDistributed<double> cols(kN, kM, p.size(), p.rank());
    mesh::redistribute(p, rows, cols);
    // Every element of our column block must be the global value.
    for (std::size_t c = 0; c < cols.cols_local(); ++c) {
      for (std::size_t r = 0; r < kN; ++r) {
        EXPECT_EQ(cols.at(r, c), tagval(r, cols.cols().lo + c));
      }
    }

    mesh::RowDistributed<double> rows2(kN, kM, p.size(), p.rank());
    mesh::redistribute(p, cols, rows2);
    for (std::size_t r = 0; r < rows2.rows_local(); ++r) {
      for (std::size_t c = 0; c < kM; ++c) {
        EXPECT_EQ(rows2.at(r, c), tagval(rows2.rows().lo + r, c));
      }
    }
  });
}

TEST_P(RowColP, GatherMatrixAssemblesGlobal) {
  const int nprocs = GetParam();
  constexpr std::size_t kN = 10, kM = 4;
  const auto results = mpl::spmd_collect<bool>(nprocs, [&](mpl::Process& p) {
    mesh::RowDistributed<double> rows(kN, kM, p.size(), p.rank());
    rows.init_from_global(&tagval);
    const auto dense = mesh::gather_matrix(p, rows, 0);
    if (p.rank() != 0) return dense.empty();
    bool ok = dense.rows() == kN && dense.cols() == kM;
    for (std::size_t i = 0; i < kN && ok; ++i) {
      for (std::size_t j = 0; j < kM && ok; ++j) ok = dense(i, j) == tagval(i, j);
    }
    return ok;
  });
  for (bool ok : results) EXPECT_TRUE(ok);
}

TEST_P(RowColP, RedistributionUsesOneAlltoall) {
  const int nprocs = GetParam();
  if (nprocs < 2) GTEST_SKIP();
  mpl::TraceSnapshot trace;
  mpl::spmd_collect<int>(
      nprocs,
      [&](mpl::Process& p) {
        mesh::RowDistributed<double> rows(16, 16, p.size(), p.rank());
        mesh::ColDistributed<double> cols(16, 16, p.size(), p.rank());
        mesh::redistribute(p, rows, cols);
        return 0;
      },
      &trace);
  EXPECT_EQ(trace.op(mpl::Op::kAlltoall), static_cast<std::uint64_t>(nprocs));
  EXPECT_EQ(trace.messages,
            static_cast<std::uint64_t>(nprocs) * static_cast<std::uint64_t>(nprocs - 1));
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, RowColP, testing::Values(1, 2, 3, 4, 5, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

// ------------------------------------------------------------------ global --

TEST(GlobalVar, BroadcastEstablishesConsistency) {
  mpl::spmd_run(4, [](mpl::Process& p) {
    mesh::Global<double> tol(0.0);
    // Rank 2 "reads the value from a file"; broadcast re-establishes copies.
    tol.store_from(p, p.rank() == 2 ? 0.125 : -1.0, 2);
    EXPECT_DOUBLE_EQ(tol.get(), 0.125);
  });
}

TEST(GlobalVar, ReplicatedStoreWithVerification) {
  mpl::spmd_run(3, [](mpl::Process& p) {
    mesh::Global<int> steps(0);
    const int value = 40 + 2;  // identical on all ranks
    steps.store_replicated(p, value, /*verify=*/true);
    EXPECT_EQ(static_cast<int>(steps), 42);
  });
}

// --------------------------------------------------------------------- io --

TEST(GridIO, GatherScatterRoundtrip) {
  const int nprocs = 4;
  const auto pg = mpl::CartGrid2D::near_square(nprocs);
  constexpr std::size_t kN = 9, kM = 5;
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid2D<double> g(kN, kM, pg, p.rank(), 1);
    g.init_from_global(&tagval);
    const auto dense = mesh::gather_grid(p, pg, g, 0);
    if (p.rank() == 0) {
      ASSERT_EQ(dense.rows(), kN);
      for (std::size_t i = 0; i < kN; ++i) {
        for (std::size_t j = 0; j < kM; ++j) EXPECT_EQ(dense(i, j), tagval(i, j));
      }
    }
    // Scatter back into a fresh grid; interiors must match the original.
    Grid2D<double> h(kN, kM, pg, p.rank(), 1);
    mesh::scatter_grid(p, pg, dense, h, 0);
    EXPECT_EQ(h.interior(), g.interior());
  });
}

TEST(GridIO, WriteGridTextProducesFile) {
  const std::string path = testing::TempDir() + "/ppa_grid.txt";
  mpl::spmd_run(2, [&](mpl::Process& p) {
    const mpl::CartGrid2D pg(2, 1);
    Grid2D<double> g(4, 3, pg, p.rank(), 1);
    g.init_from_global([](std::size_t i, std::size_t j) {
      return static_cast<double>(i * 3 + j);
    });
    mesh::write_grid_text(p, pg, g, path, 0);
  });
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  double v = -1.0;
  in >> v;
  EXPECT_DOUBLE_EQ(v, 0.0);
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- Grid3D --

TEST(Grid3D, PartitionCoversGlobalGrid) {
  const mpl::CartGrid3D pg(2, 2, 2);
  Array3D<int> owner(5, 6, 7, -1);
  for (int r = 0; r < pg.size(); ++r) {
    const Grid3D<double> g(5, 6, 7, pg, r, 1);
    for (std::size_t i = g.range(0).lo; i < g.range(0).hi; ++i)
      for (std::size_t j = g.range(1).lo; j < g.range(1).hi; ++j)
        for (std::size_t k = g.range(2).lo; k < g.range(2).hi; ++k) {
          EXPECT_EQ(owner(i, j, k), -1);
          owner(i, j, k) = r;
        }
  }
  for (int o : owner.flat()) EXPECT_NE(o, -1);
}

double tagval3(std::size_t i, std::size_t j, std::size_t k) {
  return static_cast<double>(i) * 1e6 + static_cast<double>(j) * 1e3 +
         static_cast<double>(k);
}

class Exchange3DP : public testing::TestWithParam<int> {};

TEST_P(Exchange3DP, GhostsMatchNeighborInteriorsInclCorners) {
  const int nprocs = GetParam();
  const auto pg = mpl::CartGrid3D::near_cubic(nprocs);
  constexpr std::size_t kN = 6, kM = 5, kL = 7;
  mpl::spmd_run(nprocs, [&](mpl::Process& p) {
    Grid3D<double> g(kN, kM, kL, pg, p.rank(), 1);
    g.init_from_global(&tagval3);
    mesh::exchange_boundaries(p, pg, g);
    const auto nx = static_cast<std::ptrdiff_t>(g.nx());
    const auto ny = static_cast<std::ptrdiff_t>(g.ny());
    const auto nz = static_cast<std::ptrdiff_t>(g.nz());
    for (std::ptrdiff_t i = -1; i <= nx; ++i)
      for (std::ptrdiff_t j = -1; j <= ny; ++j)
        for (std::ptrdiff_t k = -1; k <= nz; ++k) {
          const bool ghost =
              (i < 0 || i >= nx || j < 0 || j >= ny || k < 0 || k >= nz);
          if (!ghost) continue;
          const auto gi = static_cast<std::ptrdiff_t>(g.range(0).lo) + i;
          const auto gj = static_cast<std::ptrdiff_t>(g.range(1).lo) + j;
          const auto gk = static_cast<std::ptrdiff_t>(g.range(2).lo) + k;
          if (gi < 0 || gi >= static_cast<std::ptrdiff_t>(kN) || gj < 0 ||
              gj >= static_cast<std::ptrdiff_t>(kM) || gk < 0 ||
              gk >= static_cast<std::ptrdiff_t>(kL)) {
            continue;
          }
          EXPECT_EQ(g(i, j, k),
                    tagval3(static_cast<std::size_t>(gi),
                            static_cast<std::size_t>(gj),
                            static_cast<std::size_t>(gk)))
              << "rank " << p.rank() << " ghost (" << i << "," << j << "," << k
              << ")";
        }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, Exchange3DP, testing::Values(1, 2, 4, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "P";
                           name += std::to_string(info.param);
                           return name;
                         });

}  // namespace
