// Unit tests for the message-passing layer: envelopes, mailboxes, barrier,
// SPMD runtime, failure propagation, tracing, and Cartesian topologies.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "mpl/mailbox.hpp"
#include "mpl/message.hpp"
#include "mpl/process.hpp"
#include "mpl/spmd.hpp"
#include "mpl/topology.hpp"
#include "mpl/world.hpp"

namespace {

using namespace ppa::mpl;

// ------------------------------------------------------------ pack/unpack --

TEST(Message, PackUnpackRoundtrip) {
  const std::vector<int> xs{1, -2, 3, 2147483647};
  const auto bytes = pack(std::span<const int>(xs));
  EXPECT_EQ(bytes.size(), xs.size() * sizeof(int));
  EXPECT_EQ(unpack<int>(bytes), xs);
}

TEST(Message, PackEmpty) {
  const std::vector<double> xs;
  const auto bytes = pack(std::span<const double>(xs));
  EXPECT_TRUE(bytes.empty());
  EXPECT_TRUE(unpack<double>(bytes).empty());
}

TEST(Message, PackStructs) {
  struct P {
    double x, y;
    int id;
  };
  const std::vector<P> ps{{1.0, 2.0, 3}, {-1.0, 0.5, 9}};
  const auto bytes = pack(std::span<const P>(ps));
  const auto back = unpack<P>(bytes);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[1].id, 9);
  EXPECT_DOUBLE_EQ(back[0].y, 2.0);
}

// ---------------------------------------------------------------- mailbox --

TEST(Mailbox, FifoPerSourceTag) {
  Mailbox box;
  box.push({0, 5, pack(std::span<const int>(std::vector<int>{1}))});
  box.push({0, 5, pack(std::span<const int>(std::vector<int>{2}))});
  EXPECT_EQ(unpack<int>(box.pop(0, 5).payload).front(), 1);
  EXPECT_EQ(unpack<int>(box.pop(0, 5).payload).front(), 2);
}

TEST(Mailbox, MatchesBySourceAndTag) {
  Mailbox box;
  box.push({1, 7, {}});
  box.push({2, 7, {}});
  box.push({1, 9, {}});
  const auto env = box.pop(1, 9);
  EXPECT_EQ(env.source, 1);
  EXPECT_EQ(env.tag, 9);
  EXPECT_EQ(box.pending(), 2u);
}

TEST(Mailbox, WildcardSource) {
  Mailbox box;
  box.push({3, 4, {}});
  const auto env = box.pop(kAnySource, 4);
  EXPECT_EQ(env.source, 3);
}

TEST(Mailbox, WildcardTag) {
  Mailbox box;
  box.push({3, 42, {}});
  const auto env = box.pop(3, kAnyTag);
  EXPECT_EQ(env.tag, 42);
}

TEST(Mailbox, TryPopReturnsFalseWhenEmpty) {
  Mailbox box;
  Envelope env;
  EXPECT_FALSE(box.try_pop(kAnySource, kAnyTag, env));
  box.push({0, 0, {}});
  EXPECT_TRUE(box.try_pop(kAnySource, kAnyTag, env));
}

TEST(Mailbox, AbortWakesBlockedReceiver) {
  Mailbox box;
  std::atomic<bool> threw{false};
  std::jthread waiter([&] {
    try {
      box.pop(0, 0);
    } catch (const WorldAborted&) {
      threw = true;
    }
  });
  // Give the waiter time to block, then abort.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.abort();
  waiter.join();
  EXPECT_TRUE(threw);
}

// ------------------------------------------------------------------ world --

TEST(World, RejectsNonPositiveSize) {
  EXPECT_THROW(World w(0), std::invalid_argument);
  EXPECT_THROW(World w(-3), std::invalid_argument);
}

// ------------------------------------------------------------------- spmd --

TEST(Spmd, RunsAllRanksExactlyOnce) {
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> seen(8);
  spmd_run(8, [&](Process& p) {
    count.fetch_add(1);
    seen[static_cast<std::size_t>(p.rank())].fetch_add(1);
    EXPECT_EQ(p.size(), 8);
  });
  EXPECT_EQ(count.load(), 8);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Spmd, SingleRankWorld) {
  spmd_run(1, [](Process& p) {
    EXPECT_EQ(p.rank(), 0);
    EXPECT_EQ(p.size(), 1);
    p.barrier();  // must not deadlock
  });
}

TEST(Spmd, PingPong) {
  spmd_run(2, [](Process& p) {
    if (p.rank() == 0) {
      p.send_value(1, 0, 42);
      EXPECT_EQ(p.recv_value<int>(1, 1), 43);
    } else {
      EXPECT_EQ(p.recv_value<int>(0, 0), 42);
      p.send_value(0, 1, 43);
    }
  });
}

TEST(Spmd, MessagesAreDeepCopies) {
  // Mutating the sender's buffer after send must not affect the receiver:
  // this is the distributed-memory discipline.
  spmd_run(2, [](Process& p) {
    if (p.rank() == 0) {
      std::vector<int> buf{1, 2, 3};
      p.send(1, 0, buf);
      buf[0] = 999;
      p.barrier();
    } else {
      p.barrier();
      EXPECT_EQ(p.recv<int>(0, 0), (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(Spmd, NonOvertakingSameSourceSameTag) {
  spmd_run(2, [](Process& p) {
    if (p.rank() == 0) {
      for (int i = 0; i < 100; ++i) p.send_value(1, 3, i);
    } else {
      for (int i = 0; i < 100; ++i) EXPECT_EQ(p.recv_value<int>(0, 3), i);
    }
  });
}

TEST(Spmd, AnySourceReceivesFromAll) {
  constexpr int kP = 6;
  spmd_run(kP, [](Process& p) {
    if (p.rank() == 0) {
      std::set<int> sources;
      for (int i = 0; i < kP - 1; ++i) {
        auto [src, data] = p.recv_any<int>(kAnySource, 0);
        EXPECT_EQ(data.front(), src * 10);
        sources.insert(src);
      }
      EXPECT_EQ(sources.size(), static_cast<std::size_t>(kP - 1));
    } else {
      p.send_value(0, 0, p.rank() * 10);
    }
  });
}

TEST(Spmd, ExceptionPropagatesAndReleasesBlockedRanks) {
  // Rank 1 throws; rank 0 is blocked in recv and must be released via
  // WorldAborted rather than deadlocking. The caller sees the root cause.
  EXPECT_THROW(spmd_run(4,
                        [](Process& p) {
                          if (p.rank() == 1) throw std::runtime_error("boom");
                          if (p.rank() == 0) p.recv<int>(1, 0);
                          if (p.rank() >= 2) p.barrier();
                        }),
               std::runtime_error);
}

TEST(Spmd, CollectReturnsPerRankResults) {
  const auto results =
      spmd_collect<int>(5, [](Process& p) { return p.rank() * p.rank(); });
  EXPECT_EQ(results, (std::vector<int>{0, 1, 4, 9, 16}));
}

TEST(Spmd, SendrecvExchange) {
  spmd_run(2, [](Process& p) {
    const int partner = 1 - p.rank();
    const std::vector<int> mine{p.rank() + 100};
    const auto theirs =
        p.sendrecv<int>(partner, 0, std::span<const int>(mine), partner, 0);
    EXPECT_EQ(theirs.front(), partner + 100);
  });
}

TEST(Spmd, TraceCountsMessagesAndBytes) {
  const auto trace = spmd_run(2, [](Process& p) {
    if (p.rank() == 0) {
      p.send(1, 0, std::vector<int>{1, 2, 3, 4});  // 16 bytes
    } else {
      p.recv<int>(0, 0);
    }
  });
  EXPECT_EQ(trace.messages, 1u);
  EXPECT_EQ(trace.bytes, 16u);
}

TEST(Spmd, BarrierSynchronizes) {
  // Classic flag test: every rank writes before the barrier; after the
  // barrier every rank must observe all writes.
  constexpr int kP = 6;
  std::vector<std::atomic<int>> flags(kP);
  spmd_run(kP, [&](Process& p) {
    flags[static_cast<std::size_t>(p.rank())].store(1);
    p.barrier();
    for (int r = 0; r < kP; ++r) EXPECT_EQ(flags[static_cast<std::size_t>(r)].load(), 1);
  });
}

TEST(Spmd, ManyRanksOversubscribed) {
  // More ranks than cores: blocking receives must not busy-deadlock.
  constexpr int kP = 32;
  const auto results = spmd_collect<int>(kP, [](Process& p) {
    // Ring: pass rank 0's token all the way around.
    if (p.rank() == 0) {
      p.send_value(1 % p.size(), 0, 7);
      return p.recv_value<int>(p.size() - 1, 0);
    }
    const int token = p.recv_value<int>(p.rank() - 1, 0);
    p.send_value((p.rank() + 1) % p.size(), 0, token);
    return token;
  });
  for (int v : results) EXPECT_EQ(v, 7);
}

// --------------------------------------------------------------- topology --

TEST(CartGrid2D, NearSquareFactorization) {
  const auto g16 = CartGrid2D::near_square(16);
  EXPECT_EQ(g16.npx() * g16.npy(), 16);
  EXPECT_EQ(g16.npx(), 4);
  EXPECT_EQ(g16.npy(), 4);
  const auto g12 = CartGrid2D::near_square(12);
  EXPECT_EQ(g12.npx() * g12.npy(), 12);
  EXPECT_LE(g12.npy(), g12.npx());
  EXPECT_EQ(g12.npy(), 3);
  const auto g7 = CartGrid2D::near_square(7);  // prime -> 7x1
  EXPECT_EQ(g7.npx(), 7);
  EXPECT_EQ(g7.npy(), 1);
}

TEST(CartGrid2D, RankCoordsRoundtrip) {
  const CartGrid2D g(3, 4);
  for (int r = 0; r < g.size(); ++r) {
    const auto [px, py] = g.coords_of(r);
    EXPECT_EQ(g.rank_of(px, py), r);
  }
}

TEST(CartGrid2D, NeighborsAndBoundaries) {
  const CartGrid2D g(3, 3);
  const int center = g.rank_of(1, 1);
  EXPECT_EQ(g.north(center), g.rank_of(0, 1));
  EXPECT_EQ(g.south(center), g.rank_of(2, 1));
  EXPECT_EQ(g.west(center), g.rank_of(1, 0));
  EXPECT_EQ(g.east(center), g.rank_of(1, 2));
  EXPECT_EQ(g.north(g.rank_of(0, 0)), kNoNeighbor);
  EXPECT_EQ(g.west(g.rank_of(0, 0)), kNoNeighbor);
  EXPECT_EQ(g.south(g.rank_of(2, 2)), kNoNeighbor);
  EXPECT_EQ(g.east(g.rank_of(2, 2)), kNoNeighbor);
}

TEST(CartGrid2D, NeighborRelationIsSymmetric) {
  const CartGrid2D g(4, 5);
  for (int r = 0; r < g.size(); ++r) {
    if (g.north(r) != kNoNeighbor) {
      EXPECT_EQ(g.south(g.north(r)), r);
    }
    if (g.east(r) != kNoNeighbor) {
      EXPECT_EQ(g.west(g.east(r)), r);
    }
  }
}

TEST(CartGrid3D, NearCubicFactorization) {
  const auto g8 = CartGrid3D::near_cubic(8);
  EXPECT_EQ(g8.npx() * g8.npy() * g8.npz(), 8);
  EXPECT_EQ(g8.npx(), 2);
  EXPECT_EQ(g8.npy(), 2);
  EXPECT_EQ(g8.npz(), 2);
  const auto g12 = CartGrid3D::near_cubic(12);
  EXPECT_EQ(g12.npx() * g12.npy() * g12.npz(), 12);
}

TEST(CartGrid3D, RankCoordsRoundtripAndNeighbors) {
  const CartGrid3D g(2, 3, 4);
  for (int r = 0; r < g.size(); ++r) {
    const auto c = g.coords_of(r);
    EXPECT_EQ(g.rank_of(c[0], c[1], c[2]), r);
  }
  const int r0 = g.rank_of(0, 1, 2);
  EXPECT_EQ(g.neighbor(r0, 0, +1), g.rank_of(1, 1, 2));
  EXPECT_EQ(g.neighbor(r0, 0, -1), kNoNeighbor);
  EXPECT_EQ(g.neighbor(r0, 1, -1), g.rank_of(0, 0, 2));
  EXPECT_EQ(g.neighbor(r0, 2, +1), g.rank_of(0, 1, 3));
}

}  // namespace
