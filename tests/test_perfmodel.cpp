// Tests for the archetype performance models: basic sanity (monotone
// costs, positive times) and — crucially — the *figure shape* assertions:
// each paper figure's qualitative behaviour must emerge from the model
// (one-deep beats traditional; FFT speedup flattens low; Poisson and CFD
// scale near-linearly; EM peaks around P=16 then declines; the spectral
// code is superlinear at small P relative to its 5-processor base).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "perfmodel/machine.hpp"
#include "perfmodel/models.hpp"

namespace {

using namespace ppa::perf;

std::vector<int> range_procs(int lo, int hi, int step = 1) {
  std::vector<int> out;
  for (int p = lo; p <= hi; p += step) out.push_back(p);
  return out;
}

double speedup_at(const std::vector<SpeedupPoint>& c, int p) {
  for (const auto& pt : c) {
    if (pt.procs == p) return pt.speedup;
  }
  ADD_FAILURE() << "no point at P=" << p;
  return 0.0;
}

// ----------------------------------------------------------------- basics --

TEST(Machines, PresetsAreOrdered) {
  // Later machines are faster in every respect.
  const auto delta = intel_delta();
  const auto sp = ibm_sp();
  EXPECT_LT(sp.alpha, delta.alpha);
  EXPECT_LT(sp.beta, delta.beta);
  EXPECT_LT(sp.elem_op, delta.elem_op);
  EXPECT_GT(sp.memory_bytes, delta.memory_bytes);
}

TEST(Collectives, CostsScaleSanely) {
  const CollectiveCost cc{ibm_sp()};
  EXPECT_EQ(CollectiveCost::ceil_log2(1), 0);
  EXPECT_EQ(CollectiveCost::ceil_log2(2), 1);
  EXPECT_EQ(CollectiveCost::ceil_log2(5), 3);
  EXPECT_EQ(CollectiveCost::ceil_log2(16), 4);
  // Broadcast is logarithmic: doubling P adds one step.
  EXPECT_NEAR(cc.broadcast(16, 100) / cc.broadcast(4, 100), 2.0, 1e-9);
  // All-to-all is linear in P for fixed pair size.
  EXPECT_GT(cc.alltoall(32, 1000), cc.alltoall(16, 1000) * 1.9);
  EXPECT_EQ(cc.alltoall(1, 1000), 0.0);
}

TEST(Models, FrameCrossingLatencyPenalty) {
  const auto sp = ibm_sp();
  EXPECT_DOUBLE_EQ(effective_alpha(sp, 16), sp.alpha);
  EXPECT_DOUBLE_EQ(effective_alpha(sp, 17), 5.0 * sp.alpha);
  EXPECT_DOUBLE_EQ(effective_alpha(sp, 17, 0), sp.alpha);  // disabled
  EXPECT_DOUBLE_EQ(effective_beta(sp, 16), sp.beta);
  EXPECT_DOUBLE_EQ(effective_beta(sp, 17), 3.5 * sp.beta);
}

// ---------------------------------------------------------------- Fig 6 ----

TEST(Fig6Model, OneDeepBeatsTraditionalEverywhere) {
  const auto m = intel_delta();
  const SortWorkload w;
  for (int p : {2, 4, 8, 16, 32, 64}) {
    EXPECT_LT(mergesort_onedeep_time(m, w, p), mergesort_traditional_time(m, w, p))
        << "P=" << p;
  }
}

TEST(Fig6Model, TraditionalSaturatesOneDeepKeepsScaling) {
  const auto m = intel_delta();
  const SortWorkload w;
  const auto procs = range_procs(1, 64);
  const auto onedeep = fig6_onedeep(m, w, procs);
  const auto trad = fig6_traditional(m, w, procs);
  // One-deep at 64 is a large fraction of perfect; traditional saturates
  // far below (the paper's Fig 6 shape).
  EXPECT_GT(speedup_at(onedeep, 64), 35.0);
  EXPECT_LT(speedup_at(trad, 64), 15.0);
  // Traditional gains little from 32 -> 64.
  EXPECT_LT(speedup_at(trad, 64) / speedup_at(trad, 32), 1.3);
  // One-deep is still gaining substantially.
  EXPECT_GT(speedup_at(onedeep, 64) / speedup_at(onedeep, 32), 1.5);
  // Nobody beats perfect speedup.
  for (const auto& pt : onedeep) EXPECT_LE(pt.speedup, pt.procs + 1e-9);
  for (const auto& pt : trad) EXPECT_LE(pt.speedup, pt.procs + 1e-9);
}

// --------------------------------------------------------------- Fig 12 ----

TEST(Fig12Model, FftSpeedupIsDisappointing) {
  const auto m = ibm_sp();
  const FftWorkload w;
  const auto curve = fig12_fft(m, w, range_procs(1, 32));
  // The paper: flattens at a small single-digit speedup by P=32 ("a result
  // of too small a ratio of computation to communication").
  const double s32 = speedup_at(curve, 32);
  EXPECT_GT(s32, 2.0);
  EXPECT_LT(s32, 6.0);
  // Diminishing returns: the last doubling adds < 25%.
  EXPECT_LT(s32 / speedup_at(curve, 16), 1.25);
  // Efficiency at 32 is poor (that is the figure's whole point).
  EXPECT_LT(s32 / 32.0, 0.15);
}

// --------------------------------------------------------------- Fig 15 ----

TEST(Fig15Model, PoissonScalesNearLinearly) {
  const auto m = ibm_sp();
  const PoissonWorkload w;
  // The paper plots measurements at a handful of sizes; check those.
  const std::vector<int> measured{1, 2, 4, 8, 16, 24, 32, 40};
  const auto curve = fig15_poisson(m, w, measured);
  const double s40 = speedup_at(curve, 40);
  EXPECT_GT(s40, 30.0);  // paper: ~35 at 40
  EXPECT_LE(s40, 40.0);
  // Monotone increasing across the measured sizes.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].speedup, curve[i - 1].speedup);
  }
}

// --------------------------------------------------------------- Fig 16 ----

TEST(Fig16Model, CfdNearPerfectTo100) {
  const auto m = intel_delta();
  const CfdWorkload w;
  const auto curve = fig16_cfd(m, w, range_procs(10, 100, 10));
  const double s100 = speedup_at(curve, 100);
  EXPECT_GT(s100, 70.0);  // paper: close to perfect at 100
  EXPECT_LE(s100, 100.0);
  EXPECT_GT(s100 / 100.0, 0.7);  // efficiency stays high
}

// --------------------------------------------------------------- Fig 17 ----

TEST(Fig17Model, EmPeaksNearSixteenThenDeclines) {
  const auto m = ibm_sp();
  const EmWorkload w;
  const auto curve = fig17_em(m, w, range_procs(1, 18));
  const double s16 = speedup_at(curve, 16);
  const double s17 = speedup_at(curve, 17);
  const double s18 = speedup_at(curve, 18);
  // The paper: "performance ... decrease[s] for more than 16 processors".
  EXPECT_GT(s16, s17);
  EXPECT_GT(s16, s18);
  // And speedup grows up to 16 overall (allow local jitter from
  // factorization quality, but the envelope rises).
  EXPECT_GT(s16, speedup_at(curve, 8));
  EXPECT_GT(speedup_at(curve, 8), speedup_at(curve, 4));
}

// --------------------------------------------------------------- Fig 18 ----

TEST(Fig18Model, SpectralSuperlinearAtSmallPRelativeToBase) {
  const auto m = ibm_sp();
  const SpectralWorkload w;
  std::vector<int> procs;
  for (int x = 1; x <= 8; ++x) procs.push_back(5 * x);
  const auto curve = fig18_spectral(m, w, procs);
  // Relative speedup at the base is 5 by construction.
  EXPECT_NEAR(speedup_at(curve, 5), 5.0, 1e-9);
  // Paper: "better-than-ideal speedup for small numbers of processors"
  // because the base run paged.
  EXPECT_GT(speedup_at(curve, 10), 10.0);
  // The relative advantage fades as communication grows with P.
  EXPECT_LT(speedup_at(curve, 40) / 40.0, speedup_at(curve, 10) / 10.0);
  EXPECT_LT(speedup_at(curve, 40), 55.0);
  // Still monotone increasing in absolute terms.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].speedup, curve[i - 1].speedup);
  }
}

TEST(Fig18Model, NoPagingWithoutMemoryPressure) {
  auto m = ibm_sp();
  m.memory_bytes = 1e12;  // effectively infinite
  const SpectralWorkload w;
  std::vector<int> procs;
  for (int x = 1; x <= 8; ++x) procs.push_back(5 * x);
  const auto curve = fig18_spectral(m, w, procs);
  // Without paging the relative curve cannot exceed the ideal line.
  for (const auto& pt : curve) EXPECT_LE(pt.speedup, pt.procs + 1e-9);
}

}  // namespace
