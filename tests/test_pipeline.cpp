// Tests for the streaming pipeline archetype (core/pipeline.hpp): driver
// equivalence (sequential == threaded == SPMD), bounded-queue backpressure,
// ordered vs unordered farm semantics, worker-state flush, first-exception
// propagation, and the two stream workloads (apps/stream/).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "apps/stream/signal_chain.hpp"
#include "apps/stream/text_stats.hpp"
#include "core/pipeline.hpp"
#include "mpl/spmd.hpp"

namespace {

using namespace ppa;

/// A counting source: emits 0..n-1.
auto counting_source(long n) {
  long next = 0;
  return pipeline::source([next, n]() mutable -> std::optional<long> {
    return next < n ? std::optional<long>(next++) : std::nullopt;
  });
}

// ------------------------------------------------------- basic semantics --

TEST(Pipeline, SequentialChainsStages) {
  std::vector<long> out;
  auto plan = counting_source(10) | pipeline::stage([](long v) { return v * 3; }) |
              pipeline::stage([](long v) { return v + 1; }) |
              pipeline::sink([&out](long v) { out.push_back(v); });
  plan.run_sequential();
  ASSERT_EQ(out.size(), 10u);
  for (long i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 3 * i + 1);
}

TEST(Pipeline, OptionalStageFilters) {
  std::vector<long> out;
  auto plan = counting_source(20) |
              pipeline::stage([](long v) -> std::optional<long> {
                if (v % 2 != 0) return std::nullopt;
                return v;
              }) |
              pipeline::sink([&out](long v) { out.push_back(v); });
  plan.run_sequential();
  std::vector<long> expected{0, 2, 4, 6, 8, 10, 12, 14, 16, 18};
  EXPECT_EQ(out, expected);
}

TEST(Pipeline, SourceDirectlyIntoSink) {
  long sum = 0;
  auto plan = counting_source(100) | pipeline::sink([&sum](long v) { sum += v; });
  plan.run_sequential();
  EXPECT_EQ(sum, 4950);
  long sum2 = 0;
  auto plan2 = counting_source(100) | pipeline::sink([&sum2](long v) { sum2 += v; });
  (void)plan2.run_threaded();
  EXPECT_EQ(sum2, 4950);
}

TEST(Pipeline, EmptyStreamCompletesEverywhere) {
  int calls = 0;
  const auto make = [&calls] {
    return counting_source(0) |
           pipeline::farm(2, [] { return [](long v) { return v; }; },
                          pipeline::ordered) |
           pipeline::sink([&calls](long) { ++calls; });
  };
  auto p1 = make();
  p1.run_sequential();
  auto p2 = make();
  (void)p2.run_threaded();
  EXPECT_EQ(calls, 0);
  auto results = mpl::spmd_collect<int>(4, [&](mpl::Process& p) {
    int local_calls = 0;
    auto plan = counting_source(0) |
                pipeline::farm(2, [] { return [](long v) { return v; }; },
                               pipeline::ordered) |
                pipeline::sink([&local_calls](long) { ++local_calls; });
    plan.run_process(p);
    return local_calls;
  });
  for (const int c : results) EXPECT_EQ(c, 0);
}

// ------------------------------------------------- driver equivalence -----

TEST(Pipeline, ThreadedEqualsSequentialOrderedFarm) {
  const auto make = [](std::vector<long>& out) {
    return counting_source(500) |
           pipeline::farm(4, [] { return [](long v) { return v * v; }; },
                          pipeline::ordered) |
           pipeline::sink([&out](long v) { out.push_back(v); });
  };
  std::vector<long> seq_out, thr_out;
  auto p1 = make(seq_out);
  p1.run_sequential();
  auto p2 = make(thr_out);
  pipeline::Config cfg;
  cfg.queue_capacity = 32;
  cfg.batch = 8;
  (void)p2.run_threaded(cfg);
  EXPECT_EQ(thr_out, seq_out);  // ordered farm: exact sequence match
}

TEST(Pipeline, UnorderedFarmIsAPermutation) {
  const auto make = [](std::vector<long>& out) {
    return counting_source(300) |
           pipeline::farm(4, [] { return [](long v) { return v + 7; }; },
                          pipeline::unordered) |
           pipeline::sink([&out](long v) { out.push_back(v); });
  };
  std::vector<long> seq_out, thr_out;
  auto p1 = make(seq_out);
  p1.run_sequential();
  auto p2 = make(thr_out);
  pipeline::Config cfg;
  cfg.queue_capacity = 16;
  cfg.batch = 4;
  (void)p2.run_threaded(cfg);
  std::sort(seq_out.begin(), seq_out.end());
  std::sort(thr_out.begin(), thr_out.end());
  EXPECT_EQ(thr_out, seq_out);  // same multiset, any order
}

TEST(Pipeline, SpmdEqualsSequentialOrderedFarm) {
  const auto make = [](std::vector<long>& out) {
    return counting_source(400) | pipeline::stage([](long v) { return v - 3; }) |
           pipeline::farm(3, [] { return [](long v) { return 5 * v; }; },
                          pipeline::ordered) |
           pipeline::sink([&out](long v) { out.push_back(v); });
  };
  std::vector<long> seq_out;
  auto p1 = make(seq_out);
  p1.run_sequential();
  const int np = 6;  // source + stage + farm(3) + sink
  pipeline::Config cfg;
  cfg.queue_capacity = 24;
  cfg.batch = 6;
  auto per_rank = mpl::spmd_collect<std::vector<long>>(np, [&](mpl::Process& p) {
    std::vector<long> out;
    auto plan = make(out);
    EXPECT_EQ(plan.ranks_required(), np);
    plan.run_process(p, cfg);
    return out;
  });
  EXPECT_EQ(per_rank.back(), seq_out);
  for (int r = 0; r + 1 < np; ++r) {
    EXPECT_TRUE(per_rank[static_cast<std::size_t>(r)].empty());
  }
}

TEST(Pipeline, SpmdFilteringStageBeforeOrderedFarmKeepsSequence) {
  // A filtering stage upstream of an ordered farm can shrink whole batches
  // to empty; those empties must keep traveling on the wire so the farm's
  // output resequencer still sees contiguous sequence numbers (a dropped
  // seq would stall the resequencer forever). Batch=2 makes all-filtered
  // batches common.
  constexpr long kN = 600;
  const auto make = [](std::vector<long>& out) {
    return counting_source(kN) |
           pipeline::stage([](long v) -> std::optional<long> {
             if (v >= kN / 2 && v % 2 == 1) return std::nullopt;
             if (v >= kN / 2 && v % 4 == 0) return std::nullopt;
             return v;
           }) |
           pipeline::farm(3, [] { return [](long v) { return v * 10; }; },
                          pipeline::ordered) |
           pipeline::sink([&out](long v) { out.push_back(v); });
  };
  std::vector<long> seq_out;
  auto p1 = make(seq_out);
  p1.run_sequential();
  pipeline::Config cfg;
  cfg.queue_capacity = 8;
  cfg.batch = 2;
  auto per_rank = mpl::spmd_collect<std::vector<long>>(6, [&](mpl::Process& p) {
    std::vector<long> out;
    auto plan = make(out);
    plan.run_process(p, cfg);
    return out;
  });
  EXPECT_EQ(per_rank.back(), seq_out);
}

TEST(Pipeline, SpmdIdleExtraRanksAreHarmless) {
  const long want = 250 * 249 / 2;
  auto totals = mpl::spmd_collect<long>(5, [&](mpl::Process& p) {
    long total = 0;
    auto plan = counting_source(250) | pipeline::sink([&total](long v) { total += v; });
    plan.run_process(p);  // needs 2 ranks; 3 idle through the run
    return total;
  });
  EXPECT_EQ(totals[1], want);
}

TEST(Pipeline, SpmdThrowsWhenWorldTooSmall) {
  // GraphShapeError derives from std::invalid_argument, so pre-existing
  // catch sites keep working; the typed fields name the first node whose
  // rank block does not fit and carry the required-vs-available widths.
  int caught = 0;
  try {
    mpl::spmd_run(2, [&](mpl::Process& p) {
      long total = 0;
      auto plan = counting_source(10) |
                  pipeline::farm(4, [] { return [](long v) { return v; }; },
                                 pipeline::unordered) |
                  pipeline::sink([&total](long v) { total += v; });
      plan.run_process(p);  // needs 6 ranks
    });
  } catch (const GraphShapeError& e) {
    ++caught;
    EXPECT_EQ(e.node(), "farm#1 (unordered)");
    EXPECT_EQ(e.required(), 6);
    EXPECT_EQ(e.available(), 2);
  }
  EXPECT_EQ(caught, 1);
  EXPECT_THROW(
      mpl::spmd_run(2, [&](mpl::Process& p) {
        long total = 0;
        auto plan = counting_source(10) |
                    pipeline::farm(4, [] { return [](long v) { return v; }; },
                                   pipeline::unordered) |
                    pipeline::sink([&total](long v) { total += v; });
        plan.run_process(p);
      }),
      std::invalid_argument);
}

TEST(Pipeline, SpmdRejectsUnorderedFarmBeforeOrderedFarm) {
  // Wire-level resequencing needs the ordered farm's input in seq order; an
  // upstream unordered farm scrambles it, which could starve the credit
  // loop (the sink withholds acks for out-of-order batches while the
  // producer holding the missing seq waits for credit). Rejected up front,
  // with the typed error naming the ordered farm (node 3 of the graph).
  int caught = 0;
  try {
    mpl::spmd_run(8, [&](mpl::Process& p) {
      long total = 0;
      auto plan = counting_source(10) |
                  pipeline::farm(2, [] { return [](long v) { return v; }; },
                                 pipeline::unordered) |
                  pipeline::stage([](long v) { return v; }) |
                  pipeline::farm(2, [] { return [](long v) { return v; }; },
                                 pipeline::ordered) |
                  pipeline::sink([&total](long v) { total += v; });
      plan.run_process(p);
    });
  } catch (const GraphShapeError& e) {
    ++caught;
    EXPECT_EQ(e.node(), "farm#3 (ordered)");
  } catch (const std::logic_error&) {
    ADD_FAILURE() << "expected the typed GraphShapeError";
  }
  EXPECT_EQ(caught, 1);
}

TEST(Pipeline, ZeroFarmWidthIsClampedToOne) {
  // farm(0, ...) must not hang the threaded driver or divide by zero in the
  // sequential one: the factory clamps the width to one replica.
  const auto make = [](long& total) {
    return counting_source(40) |
           pipeline::farm(0, [] { return [](long v) { return v + 2; }; },
                          pipeline::ordered) |
           pipeline::sink([&total](long v) { total += v; });
  };
  const long want = 40 * 39 / 2 + 2 * 40;
  long seq_total = 0;
  auto p1 = make(seq_total);
  EXPECT_EQ(p1.ranks_required(), 3);  // source + one replica + sink
  p1.run_sequential();
  EXPECT_EQ(seq_total, want);
  long thr_total = 0;
  auto p2 = make(thr_total);
  (void)p2.run_threaded();
  EXPECT_EQ(thr_total, want);
}

TEST(Pipeline, SpmdRejectsOrderedFarmIntoFarm) {
  // The typed error names the ordered farm and carries the width story:
  // its resequencing point needs one consuming rank, but the successor
  // farm is 3 wide.
  int caught = 0;
  try {
    mpl::spmd_run(8, [&](mpl::Process& p) {
      long total = 0;
      auto plan = counting_source(10) |
                  pipeline::farm(2, [] { return [](long v) { return v; }; },
                                 pipeline::ordered) |
                  pipeline::farm(3, [] { return [](long v) { return v; }; },
                                 pipeline::unordered) |
                  pipeline::sink([&total](long v) { total += v; });
      plan.run_process(p);
    });
  } catch (const GraphShapeError& e) {
    ++caught;
    EXPECT_EQ(e.node(), "farm#1 (ordered)");
    EXPECT_EQ(e.required(), 1);
    EXPECT_EQ(e.available(), 3);
  } catch (const std::logic_error&) {
    ADD_FAILURE() << "expected the typed GraphShapeError";
  }
  EXPECT_EQ(caught, 1);
}

TEST(Pipeline, NodeWidthMetadataIsExposed) {
  // The compose layer reads per-node rank widths off the plan; pin the
  // source-to-sink order and the farm replica counts.
  long total = 0;
  auto plan = counting_source(10) | pipeline::stage([](long v) { return v; }) |
              pipeline::farm(3, [] { return [](long v) { return v; }; },
                             pipeline::unordered) |
              pipeline::sink([&total](long v) { total += v; });
  const std::vector<int> want{1, 1, 3, 1};
  EXPECT_EQ(plan.node_widths(), want);
  EXPECT_EQ(plan.node_count(), 4u);
  EXPECT_EQ(plan.ranks_required(), 6);
  EXPECT_EQ(plan.node_label(0), "source");
  EXPECT_EQ(plan.node_label(1), "stage#1");
  EXPECT_EQ(plan.node_label(2), "farm#2 (unordered)");
  EXPECT_EQ(plan.node_label(3), "sink");
}

TEST(Pipeline, FarmIntoFarmDoesNotDeadlockUnderTinyQueues) {
  // Regression: a farm task meeting a full output queue must help the pool
  // instead of parking (and the ordered-farm reorderer must not hold its
  // lock across the push) — otherwise a farm feeding a farm deadlocks once
  // every pool worker is blocked pushing while the downstream farm's tasks
  // sit unrunnable. Tiny queues + small batches maximize the blocking.
  constexpr long kN = 8000;
  long count = 0, sum = 0;
  auto plan = counting_source(kN) |
              pipeline::farm(4, [] { return [](long v) { return v + 1; }; },
                             pipeline::ordered) |
              pipeline::farm(4, [] { return [](long v) { return 2 * v; }; },
                             pipeline::unordered) |
              pipeline::sink([&](long v) {
                ++count;
                sum += v;
              });
  pipeline::Config cfg;
  cfg.queue_capacity = 4;
  cfg.batch = 2;
  const auto stats = plan.run_threaded(cfg);
  EXPECT_EQ(count, kN);
  EXPECT_EQ(sum, 2 * (kN * (kN - 1) / 2 + kN));
  for (const auto& q : stats.queues) EXPECT_LE(q.high_water, q.capacity);
}

// ------------------------------------------------------- backpressure -----

TEST(Pipeline, BackpressureBoundsQueueOccupancy) {
  // Fast source, slow sink: without blocking backpressure the first queue
  // would fill far beyond its bound. The high-water instrumentation must
  // show every queue at or below its configured capacity.
  std::atomic<long> consumed{0};
  auto plan = counting_source(600) |
              pipeline::stage([](long v) { return v; }) |
              pipeline::sink([&consumed](long) {
                consumed.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::sleep_for(std::chrono::microseconds(20));
              });
  pipeline::Config cfg;
  cfg.queue_capacity = 16;
  cfg.batch = 4;
  const auto stats = plan.run_threaded(cfg);
  EXPECT_EQ(consumed.load(), 600);
  ASSERT_EQ(stats.queues.size(), 2u);
  for (const auto& q : stats.queues) {
    EXPECT_EQ(q.capacity, 16u);
    EXPECT_LE(q.high_water, q.capacity);
    EXPECT_GT(q.batches, 0u);
  }
  // The bound was actually exercised: a 600-item stream through 4-item
  // batches crosses each queue in far more batches than fit at once.
  EXPECT_GE(stats.queues.front().batches, 600u / 4u);
}

TEST(Pipeline, OrderedFarmBacklogStaysBoundedWithSlowSink) {
  // Regression: the ordered-farm reorder buffer must not grow without
  // bound when the sink is slow — the feeder blocks on the backlog bound
  // instead of racing ahead of the blocked drainer. Correct order and a
  // capacity-respecting queue pin the behavior.
  constexpr long kN = 2000;
  std::vector<long> out;
  auto plan = counting_source(kN) |
              pipeline::farm(4, [] { return [](long v) { return v + 1; }; },
                             pipeline::ordered) |
              pipeline::sink([&out](long v) {
                out.push_back(v);
                if (out.size() % 64 == 0) {
                  std::this_thread::sleep_for(std::chrono::microseconds(200));
                }
              });
  pipeline::Config cfg;
  cfg.queue_capacity = 8;
  cfg.batch = 2;
  const auto stats = plan.run_threaded(cfg);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kN));
  for (long i = 0; i < kN; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i + 1);
  for (const auto& q : stats.queues) EXPECT_LE(q.high_water, q.capacity);
}

// ------------------------------------------------------------ exceptions --

TEST(Pipeline, ThrowingStageRethrowsExactlyOnceThreaded) {
  int caught = 0;
  auto plan = counting_source(1000) |
              pipeline::stage([](long v) {
                if (v == 321) throw std::runtime_error("stage failure");
                return v;
              }) |
              pipeline::sink([](long) {});
  try {
    (void)plan.run_threaded();
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "stage failure");
    ++caught;
  }
  EXPECT_EQ(caught, 1);
}

TEST(Pipeline, ThrowingFarmWorkerRethrowsAfterDrain) {
  // The farm must drain its in-flight pool tasks before the rethrow; the
  // drained tasks' side effects stay visible and no second exception leaks.
  std::atomic<int> processed{0};
  int caught = 0;
  auto plan = counting_source(400) |
              pipeline::farm(
                  3,
                  [&processed] {
                    return [&processed](long v) {
                      if (v == 123) throw std::runtime_error("worker failure");
                      processed.fetch_add(1, std::memory_order_relaxed);
                      return v;
                    };
                  },
                  pipeline::ordered) |
              pipeline::sink([](long) {});
  try {
    (void)plan.run_threaded();
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker failure");
    ++caught;
  }
  EXPECT_EQ(caught, 1);
  EXPECT_GT(processed.load(), 0);
}

TEST(Pipeline, ThrowingSinkRethrowsThreaded) {
  int caught = 0;
  auto plan = counting_source(100) | pipeline::sink([](long v) {
                if (v == 50) throw std::runtime_error("sink failure");
              });
  try {
    (void)plan.run_threaded();
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
}

TEST(Pipeline, ThrowingStagePropagatesFromSpmd) {
  EXPECT_THROW(
      mpl::spmd_run(3, [&](mpl::Process& p) {
        auto plan = counting_source(100) |
                    pipeline::stage([](long v) {
                      if (v == 17) throw std::runtime_error("spmd stage failure");
                      return v;
                    }) |
                    pipeline::sink([](long) {});
        plan.run_process(p);
      }),
      std::runtime_error);
}

// ------------------------------------------------- worker state + flush ---

struct FlushWorker {
  long local = 0;
  std::optional<long> operator()(long v) {
    local += v;
    return std::nullopt;
  }
  std::vector<long> flush() { return {local}; }
};

TEST(Pipeline, FarmFlushEmitsOncePerWorkerEveryDriver) {
  constexpr long kN = 500;
  constexpr int kWidth = 4;
  const long want = kN * (kN - 1) / 2;
  const auto make = [](long& total, int& flushes) {
    return counting_source(kN) |
           pipeline::farm(kWidth, [] { return FlushWorker{}; },
                          pipeline::unordered) |
           pipeline::sink([&total, &flushes](long v) {
             total += v;
             ++flushes;
           });
  };
  {
    long total = 0;
    int flushes = 0;
    auto plan = make(total, flushes);
    plan.run_sequential();
    EXPECT_EQ(total, want);
    EXPECT_EQ(flushes, kWidth);  // one local accumulator per replica
  }
  {
    long total = 0;
    int flushes = 0;
    auto plan = make(total, flushes);
    (void)plan.run_threaded();
    EXPECT_EQ(total, want);
    EXPECT_EQ(flushes, kWidth);
  }
  {
    auto results = mpl::spmd_collect<std::pair<long, int>>(
        2 + kWidth, [&](mpl::Process& p) {
          long total = 0;
          int flushes = 0;
          auto plan = make(total, flushes);
          plan.run_process(p);
          return std::pair<long, int>{total, flushes};
        });
    EXPECT_EQ(results.back().first, want);
    EXPECT_EQ(results.back().second, kWidth);
  }
}

// ------------------------------------------------------ stream workloads --

TEST(StreamSignalChain, AllDriversMatchTheOracle) {
  app::stream::SignalConfig cfg;
  cfg.windows = 96;
  cfg.farm_width = 3;
  const auto oracle = app::stream::signal_oracle(cfg);
  ASSERT_EQ(oracle.size(), cfg.windows);

  EXPECT_EQ(app::stream::signal_sequential(cfg), oracle);

  pipeline::Config pcfg;
  pcfg.queue_capacity = 32;
  pcfg.batch = 8;
  auto [threaded, stats] = app::stream::signal_threaded(cfg, pcfg);
  EXPECT_EQ(threaded, oracle);  // ordered farm: bitwise-identical sequence
  for (const auto& q : stats.queues) EXPECT_LE(q.high_water, q.capacity);

  const int np = app::stream::signal_ranks_required(cfg);
  auto per_rank = mpl::spmd_collect<std::vector<app::stream::Feature>>(
      np, [&](mpl::Process& p) { return app::stream::signal_process(p, cfg, pcfg); });
  EXPECT_EQ(per_rank.back(), oracle);
}

TEST(StreamSignalChain, FeaturesAreBandLimited) {
  // Sanity on the workload itself: filtering to an empty band nulls the
  // signal, so features collapse to zero energy.
  app::stream::SignalConfig cfg;
  cfg.windows = 4;
  cfg.band_lo = 0;
  cfg.band_hi = 0;
  for (const auto& f : app::stream::signal_oracle(cfg)) {
    EXPECT_EQ(f.energy, 0.0);
    EXPECT_EQ(f.peak_mag, 0.0);
  }
}

TEST(StreamTextStats, AllDriversMatchTheOracle) {
  app::stream::TextConfig cfg;
  cfg.chunks = 120;
  cfg.farm_width = 4;
  const auto oracle = app::stream::text_oracle(cfg);
  ASSERT_EQ(oracle.chunks, cfg.chunks);
  ASSERT_GT(oracle.words, 0u);

  EXPECT_EQ(app::stream::text_sequential(cfg), oracle);

  pipeline::Config pcfg;
  pcfg.queue_capacity = 16;
  pcfg.batch = 4;
  auto [threaded, stats] = app::stream::text_threaded(cfg, pcfg);
  EXPECT_EQ(threaded, oracle);  // worker-local counts merge commutatively
  for (const auto& q : stats.queues) EXPECT_LE(q.high_water, q.capacity);

  const int np = app::stream::text_ranks_required(cfg);
  auto per_rank = mpl::spmd_collect<app::stream::WordStats>(
      np, [&](mpl::Process& p) { return app::stream::text_process(p, cfg, pcfg); });
  EXPECT_EQ(per_rank.back(), oracle);
}

TEST(StreamTextStats, HistogramsAreConsistent) {
  app::stream::TextConfig cfg;
  cfg.chunks = 50;
  const auto stats = app::stream::text_oracle(cfg);
  std::uint64_t by_letter = 0, by_length = 0;
  for (const auto c : stats.first_letter) by_letter += c;
  for (const auto c : stats.length_hist) by_length += c;
  EXPECT_EQ(by_letter, stats.words);
  EXPECT_EQ(by_length, stats.words);
}

// ----------------------------------------------------------- config -------

TEST(Pipeline, ConfigNormalizationClampsDegenerateValues) {
  // Zero-sized knobs must not hang or divide by zero: capacity/batch are
  // clamped to at least one item, batch to at most the capacity.
  long sum = 0;
  auto plan = counting_source(50) |
              pipeline::stage([](long v) { return v; }) |
              pipeline::sink([&sum](long v) { sum += v; });
  pipeline::Config cfg;
  cfg.queue_capacity = 0;
  cfg.batch = 0;
  const auto stats = plan.run_threaded(cfg);
  EXPECT_EQ(sum, 50 * 49 / 2);
  for (const auto& q : stats.queues) EXPECT_LE(q.high_water, 1u);
}

}  // namespace
