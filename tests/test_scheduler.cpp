// Concurrency test battery for the space-sharing scheduler
// (mpl/scheduler.hpp) and the concurrent-disjoint-jobs substrate beneath it
// (JobContext in mpl/world.hpp, Engine::run_on_ranks):
//
//   - Isolation properties: concurrent narrow jobs produce bitwise-identical
//     results and identical communication traces to the same jobs run solo,
//     at several width splits of a width-8 engine; their tag reservations
//     are disjoint; the tag space drains to zero after every job.
//   - Queue semantics: priority ordering under contention, bounded-depth
//     backpressure, cancellation and deadline expiry of *queued* jobs.
//   - Nested/dependent submission: spmd_run inside a scheduled job's rank
//     body goes to a cold world; queueing from a rank thread throws.
//   - A seeded randomized soak: hundreds of mixed jobs from many submitter
//     threads, a fraction disturbed by an installed FaultPlan, with the
//     invariant that a failing job takes down only itself.
//
// PPA_SCHED_SOAK_JOBS overrides the soak's job count (default 320; CI's
// TSan leg uses a reduced count).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mpl/engine.hpp"
#include "mpl/fault.hpp"
#include "mpl/scheduler.hpp"
#include "mpl/spmd.hpp"
#include "mpl/tagspace.hpp"

namespace {

using namespace ppa;
using namespace ppa::mpl;
using namespace std::chrono_literals;

// ------------------------------------------------------------- isolation --

/// Deterministic compute + communication body: seeded per-rank data, a
/// ring exchange on a reserved user tag, an allreduce checksum, and a
/// gather to rank 0. Everything observable — the gathered bits, the trace —
/// is a function of (seed, np) only, never of physical rank placement.
/// `arrivals`/`expected` form a cross-job latch so concurrent jobs are
/// provably resident at the same time before any of them communicates, and
/// `reserved`/`expected_jobs` a second latch so every job still *holds* its
/// tag reservation while the others reserve — without it the recyclable
/// allocator may legitimately hand a released block to the next job, and
/// the disjointness assertion would race.
void isolation_body(Process& p, std::uint64_t seed, std::atomic<int>& arrivals,
                    int expected, std::atomic<int>& reserved, int expected_jobs,
                    std::vector<double>* out, std::pair<int, int>* tags_out) {
  const int np = p.size();
  const int r = p.rank();
  arrivals.fetch_add(1);
  while (arrivals.load() < expected) std::this_thread::yield();

  TagBlock block;
  int base = 0;
  if (r == 0) {
    block = p.world().reserve_tags(2);
    base = block.base();
    if (tags_out != nullptr) *tags_out = {base, base + 2};
    reserved.fetch_add(1);
    while (reserved.load() < expected_jobs) std::this_thread::yield();
  }
  base = p.broadcast_value(base, 0);

  std::mt19937_64 rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(r + 1)));
  std::vector<double> local(16);
  for (auto& v : local) {
    v = std::ldexp(static_cast<double>(rng() >> 11), -53);
  }
  const int right = (r + 1) % np;
  const int left = (r + np - 1) % np;
  p.send(right, base, std::span<const double>(local));
  const auto from_left = p.recv<double>(left, base);
  for (std::size_t i = 0; i < local.size(); ++i) local[i] += 0.5 * from_left[i];

  double checksum = 0.0;
  for (const double v : local) checksum += v;
  local.push_back(p.allreduce(checksum, SumOp{}));

  auto gathered = p.gather(std::span<const double>(local), 0);
  if (r == 0 && out != nullptr) *out = std::move(gathered);
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void expect_trace_identical(const TraceSnapshot& got, const TraceSnapshot& want,
                            const std::string& label) {
  EXPECT_EQ(got.messages, want.messages) << label;
  EXPECT_EQ(got.bytes, want.bytes) << label;
  EXPECT_EQ(got.copies, want.copies) << label;
  EXPECT_EQ(got.copied_bytes, want.copied_bytes) << label;
  EXPECT_EQ(got.ops, want.ops) << label;
  EXPECT_EQ(got.sent_bytes_by_rank, want.sent_bytes_by_rank) << label;
}

TEST(SchedulerIsolation, ConcurrentNarrowJobsMatchSoloRuns) {
  auto engine = std::make_shared<Engine>(8);
  Scheduler sched(engine);
  struct Slot {
    std::vector<double> bits;
    TraceSnapshot trace;
    std::pair<int, int> tags{0, 0};
  };
  const std::vector<std::vector<int>> splits = {
      {1, 7}, {2, 6}, {4, 4}, {2, 2, 4}};

  for (const auto& split : splits) {
    SCOPED_TRACE("split of " + std::to_string(split.size()) + " jobs");
    // Solo references: one job at a time, each on an otherwise-idle
    // scheduler (lowest-index grant == exactly the Engine::run placement).
    std::vector<Slot> solo(split.size());
    for (std::size_t j = 0; j < split.size(); ++j) {
      std::atomic<int> arrivals{0};
      std::atomic<int> reserved{0};
      const std::uint64_t seed = 100 * j + 7;
      solo[j].trace = sched.run(split[j], [&](Process& p) {
        isolation_body(p, seed, arrivals, split[j], reserved, 1,
                       &solo[j].bits, nullptr);
      });
      ASSERT_FALSE(solo[j].bits.empty());
      ASSERT_EQ(engine->world().tag_space().outstanding(), 0);
    }

    // The same jobs, all resident at once (the latch releases only when
    // every rank of every job in the split has arrived — possible only if
    // the scheduler space-shares the full width).
    const int total =
        std::accumulate(split.begin(), split.end(), 0);
    ASSERT_LE(total, engine->width());
    std::vector<Slot> conc(split.size());
    std::atomic<int> arrivals{0};
    std::atomic<int> reserved{0};
    const int njobs = static_cast<int>(split.size());
    {
      std::vector<std::jthread> submitters;
      submitters.reserve(split.size());
      for (std::size_t j = 0; j < split.size(); ++j) {
        submitters.emplace_back([&, j] {
          const std::uint64_t seed = 100 * j + 7;
          conc[j].trace = sched.run(split[j], [&, seed](Process& p) {
            isolation_body(p, seed, arrivals, total, reserved, njobs,
                           &conc[j].bits, &conc[j].tags);
          });
        });
      }
    }

    for (std::size_t j = 0; j < split.size(); ++j) {
      const std::string label =
          "job " + std::to_string(j) + " (np=" + std::to_string(split[j]) + ")";
      EXPECT_TRUE(bitwise_equal(conc[j].bits, solo[j].bits))
          << label << ": concurrent result diverged from solo run";
      expect_trace_identical(conc[j].trace, solo[j].trace, label);
      // Concurrently-held tag reservations must be pairwise disjoint.
      for (std::size_t k = j + 1; k < split.size(); ++k) {
        const bool overlap = conc[j].tags.first < conc[k].tags.second &&
                             conc[k].tags.first < conc[j].tags.second;
        EXPECT_FALSE(overlap)
            << "jobs " << j << " and " << k << " shared tags ["
            << conc[j].tags.first << "," << conc[j].tags.second << ") vs ["
            << conc[k].tags.first << "," << conc[k].tags.second << ")";
      }
    }
    EXPECT_EQ(engine->world().tag_space().outstanding(), 0)
        << "a concurrent job leaked its tag block";
  }
  // The latch proves residency, but assert the scheduler saw it too.
  EXPECT_GE(sched.stats().concurrency_high_water, 2);
  EXPECT_EQ(sched.stats().admitted,
            sched.stats().completed + sched.stats().failed);
}

TEST(SchedulerIsolation, FailingJobAbortsOnlyItsOwnRankSet) {
  auto engine = std::make_shared<Engine>(8);
  Scheduler sched(engine);
  // Job A (np=4) runs a long ping-pong loop; job B (np=4) throws once both
  // are resident. A must complete unperturbed, B must surface its error.
  std::atomic<int> resident{0};
  std::atomic<bool> b_failed{false};
  std::jthread victim([&] {
    try {
      sched.run(4, [&](Process& p) {
        resident.fetch_add(1);
        while (resident.load() < 8) std::this_thread::yield();
        if (p.rank() == 0) {
          while (!b_failed.load()) std::this_thread::yield();
        }
        p.barrier();
        const auto all = p.allgather_value(p.rank());
        ASSERT_EQ(static_cast<int>(all.size()), 4);
      });
    } catch (...) {
      ADD_FAILURE() << "the healthy job was torn down by its sibling's abort";
    }
  });
  try {
    sched.run(4, [&](Process& p) {
      resident.fetch_add(1);
      while (resident.load() < 8) std::this_thread::yield();
      if (p.rank() == 2) throw std::runtime_error("job B rank 2 failed");
      (void)p.recv_value<int>((p.rank() + 1) % 4, 5);  // released by B's abort
    });
    FAIL() << "job B's root cause must be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job B rank 2 failed");
  }
  b_failed.store(true);
  victim.join();
  EXPECT_EQ(sched.stats().failed, 1u);
  EXPECT_EQ(sched.stats().completed, 1u);
}

// --------------------------------------------------------- queue semantics --

/// Occupies `np` ranks until release() is called; submitted from its own
/// thread so the test thread stays free to drive the scenario.
struct Blocker {
  explicit Blocker(Scheduler& sched, int np) {
    thread = std::jthread([this, &sched, np] {
      sched.run(np, [this](Process& p) {
        entered.fetch_add(1);
        while (!released.load()) std::this_thread::yield();
        p.barrier();
      });
    });
    while (entered.load() < np) std::this_thread::yield();
  }
  void release() { released.store(true); }
  std::atomic<int> entered{0};
  std::atomic<bool> released{false};
  std::jthread thread;
};

void wait_until(const std::function<bool()>& pred) {
  while (!pred()) std::this_thread::yield();
}

TEST(SchedulerQueue, PriorityClassesAdmitInOrderUnderContention) {
  auto engine = std::make_shared<Engine>(2);
  Scheduler sched(engine);
  Blocker blocker(sched, 2);

  std::mutex order_mutex;
  std::vector<std::string> order;
  const auto submit = [&](const std::string& name, Priority pri) {
    const std::uint64_t before = sched.stats().submitted;
    auto t = std::jthread([&sched, &order, &order_mutex, name, pri] {
      sched.run(
          2,
          [&order, &order_mutex, name](Process& p) {
            if (p.rank() == 0) {
              const std::scoped_lock lock(order_mutex);
              order.push_back(name);
            }
            p.barrier();
          },
          pri);
    });
    // Sequence the enqueues so FIFO-within-class is deterministic.
    wait_until([&] { return sched.stats().submitted > before; });
    return t;
  };

  auto low1 = submit("low1", Priority::kLow);
  auto low2 = submit("low2", Priority::kLow);
  auto normal = submit("normal", Priority::kNormal);
  auto high = submit("high", Priority::kHigh);
  EXPECT_EQ(sched.stats().queue_high_water, 4u);

  blocker.release();
  low1.join();
  low2.join();
  normal.join();
  high.join();
  blocker.thread.join();
  EXPECT_EQ(order, (std::vector<std::string>{"high", "normal", "low1", "low2"}));
}

TEST(SchedulerQueue, BoundedDepthBlocksSubmittersAtHighWater) {
  auto engine = std::make_shared<Engine>(1);
  Scheduler sched(engine, SchedulerConfig{.queue_depth = 2});
  Blocker blocker(sched, 1);

  std::atomic<int> done{0};
  std::vector<std::jthread> queued;
  for (int i = 0; i < 2; ++i) {
    queued.emplace_back([&] {
      sched.run(1, [](Process&) {});
      done.fetch_add(1);
    });
  }
  wait_until([&] { return sched.stats().submitted == 3; });  // blocker + 2

  // The queue is at depth: a third submission must block *before* entering
  // the queue (backpressure), so `submitted` must not advance.
  std::jthread overflow([&] {
    sched.run(1, [](Process&) {});
    done.fetch_add(1);
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(sched.stats().submitted, 3u)
      << "submission was admitted past the bounded queue depth";
  EXPECT_EQ(sched.stats().queue_high_water, 2u);
  EXPECT_EQ(done.load(), 0);

  blocker.release();
  blocker.thread.join();
  for (auto& t : queued) t.join();
  overflow.join();
  EXPECT_EQ(done.load(), 3);
  // The backpressured job entered the queue once space freed up.
  EXPECT_EQ(sched.stats().submitted, 4u);
  EXPECT_LE(sched.stats().queue_high_water, 2u);
}

TEST(SchedulerQueue, CancellingAQueuedJobRemovesItWithoutRunning) {
  auto engine = std::make_shared<Engine>(1);
  Scheduler sched(engine);
  Blocker blocker(sched, 1);

  CancelSource cancel;
  std::atomic<bool> ran{false};
  std::exception_ptr seen;
  std::jthread submitter([&] {
    try {
      sched.run(
          1, [&](Process&) { ran.store(true); }, Priority::kNormal,
          JobOptions{.cancel = cancel.token()});
    } catch (...) {
      seen = std::current_exception();
    }
  });
  wait_until([&] { return sched.stats().submitted == 2; });
  cancel.cancel();
  submitter.join();
  ASSERT_TRUE(seen);
  EXPECT_THROW(std::rethrow_exception(seen), JobCancelled);
  EXPECT_FALSE(ran.load()) << "a cancelled queued job must never run";
  EXPECT_EQ(sched.stats().cancelled_queued, 1u);

  blocker.release();
  blocker.thread.join();
  // The queue slot was reclaimed; the scheduler keeps serving.
  sched.run(1, [](Process& p) { p.barrier(); });
  EXPECT_FALSE(ran.load());
}

TEST(SchedulerQueue, DeadlineExpiringWhileQueuedRejectsWithoutAdmission) {
  auto engine = std::make_shared<Engine>(1);
  Scheduler sched(engine);
  Blocker blocker(sched, 1);

  std::atomic<bool> ran{false};
  std::exception_ptr seen;
  const auto submitted_at = std::chrono::steady_clock::now();
  std::jthread submitter([&] {
    try {
      sched.run(
          1, [&](Process&) { ran.store(true); }, Priority::kNormal,
          JobOptions{.deadline = 30ms});
    } catch (...) {
      seen = std::current_exception();
    }
  });
  submitter.join();
  const auto waited = std::chrono::steady_clock::now() - submitted_at;
  ASSERT_TRUE(seen);
  EXPECT_THROW(std::rethrow_exception(seen), JobDeadlineExceeded);
  EXPECT_FALSE(ran.load()) << "an expired queued job must never be admitted";
  EXPECT_GE(waited, 30ms) << "the deadline clock must start at submission";
  EXPECT_EQ(sched.stats().expired_queued, 1u);

  blocker.release();
  blocker.thread.join();
  sched.run(1, [](Process& p) { p.barrier(); });
  EXPECT_FALSE(ran.load());
}

// --------------------------------------------- nested/dependent submission --

TEST(SchedulerNesting, SpmdRunInsideScheduledJobGoesCold) {
  auto engine = std::make_shared<Engine>(2);
  Scheduler sched(engine);
  std::atomic<int> inner_total{0};
  sched.run(2, [&](Process& p) {
    if (p.rank() == 0) {
      // From an engine rank thread spmd_run must take the cold path — the
      // process scheduler could otherwise queue a job this job depends on.
      spmd_run(2, [&](Process& q) { inner_total.fetch_add(q.size()); });
    }
    p.barrier();
  });
  EXPECT_EQ(inner_total.load(), 4);
}

TEST(SchedulerNesting, QueueingFromARankThreadThrows) {
  auto engine = std::make_shared<Engine>(2);
  Scheduler sched(engine);
  EXPECT_THROW(sched.run(2,
                         [&](Process& p) {
                           if (p.rank() == 0) {
                             (void)sched.run(1, [](Process&) {});
                           }
                         }),
               std::logic_error);
  // ...and the scheduler keeps serving after the failed job.
  sched.run(2, [](Process& p) { p.barrier(); });
  EXPECT_EQ(sched.stats().completed, 1u);
  EXPECT_EQ(sched.stats().failed, 1u);
}

TEST(SchedulerNesting, DependentConcurrentJobsDoNotDeadlock) {
  // A scheduled job that *waits on* a concurrent spmd_run issued from a
  // helper thread mid-job: the helper's submission must never queue behind
  // this job (admit-now-or-never, else cold), so the dependency resolves.
  auto engine = std::make_shared<Engine>(2);
  Scheduler sched(engine);
  std::atomic<bool> inner_done{false};
  std::jthread helper;
  sched.run(2, [&](Process& p) {
    if (p.rank() == 0) {
      helper = std::jthread([&] {
        spmd_run(2, [](Process& q) { q.barrier(); });
        inner_done.store(true);
      });
      while (!inner_done.load()) std::this_thread::yield();
    }
    p.barrier();
  });
  EXPECT_TRUE(inner_done.load());
}

// ------------------------------------------------------------------- soak --

int sched_soak_jobs() {
  const char* env = std::getenv("PPA_SCHED_SOAK_JOBS");
  if (env != nullptr && env[0] != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 320;
}

TEST(SchedulerSoak, RandomizedMixedJobsAcrossSubmitterThreads) {
  auto engine = std::make_shared<Engine>(8);
  Scheduler sched(engine, SchedulerConfig{.queue_depth = 16});

  // One seeded plan for the whole battery, keyed on *physical* ranks: jobs
  // granted rank 3 crash periodically, jobs granted rank 5 occasionally
  // lose a message (wedging a receiver until the watchdog rescues it), and
  // two ranks jitter. Which jobs are disturbed depends on placement; the
  // invariant under test is that every disturbance stays inside its job.
  FaultPlan plan(2026, {FaultRule{.site = FaultSite::kRankBody,
                                  .rank = 3,
                                  .at_op = 0,
                                  .period = 5,
                                  .kind = FaultKind::kThrow},
                        FaultRule{.site = FaultSite::kMailboxPush,
                                  .rank = 5,
                                  .at_op = 40,
                                  .period = 300,
                                  .kind = FaultKind::kDrop},
                        FaultRule{.site = FaultSite::kBarrier,
                                  .rank = 1,
                                  .at_op = 0,
                                  .period = 6,
                                  .probability = 0.5,
                                  .kind = FaultKind::kDelay,
                                  .delay_us = 50},
                        FaultRule{.site = FaultSite::kMailboxPop,
                                  .rank = 6,
                                  .at_op = 3,
                                  .period = 9,
                                  .probability = 0.5,
                                  .kind = FaultKind::kDelay,
                                  .delay_us = 30}});

  const int total_jobs = sched_soak_jobs();
  const int kThreads = 8;
  const int per_thread = (total_jobs + kThreads - 1) / kThreads;

  std::atomic<int> completed{0};
  std::atomic<int> faulted{0};
  std::atomic<int> stalled{0};
  std::atomic<int> deadlined{0};
  std::atomic<int> cancelled{0};
  std::atomic<int> wrong_results{0};
  std::atomic<int> unexpected{0};
  {
    const FaultInjectionScope scope(plan);
    std::vector<std::jthread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        std::mt19937_64 rng(777 + static_cast<std::uint64_t>(t));
        for (int j = 0; j < per_thread; ++j) {
          const int np = 1 + static_cast<int>(rng() % 4);
          const auto pri = static_cast<Priority>(rng() % 3);
          // Safety net on every job: nothing may wedge past the watchdog.
          JobOptions options{.deadline = 5s, .watchdog_grace = 250ms};
          if (rng() % 11 == 0) options.deadline = 1ms;  // SLO misses in the mix
          if (rng() % 13 == 0) {
            CancelSource cancel;  // pre-fired: exercises queue removal
            cancel.cancel();
            options.cancel = cancel.token();
          }
          try {
            sched.run(
                np,
                [np, &wrong_results](Process& p) {
                  const auto all = p.allgather_value(p.rank());
                  bool ok = static_cast<int>(all.size()) == np;
                  for (int r = 0; ok && r < np; ++r) ok = all[static_cast<std::size_t>(r)] == r;
                  const double sum = p.allreduce(static_cast<double>(p.rank()), SumOp{});
                  ok = ok && sum == static_cast<double>(np * (np - 1)) / 2.0;
                  if (!ok) wrong_results.fetch_add(1);
                },
                pri, options);
            completed.fetch_add(1);
          } catch (const FaultInjected&) {
            faulted.fetch_add(1);
          } catch (const JobStalled&) {
            stalled.fetch_add(1);
          } catch (const JobDeadlineExceeded&) {
            deadlined.fetch_add(1);
          } catch (const JobCancelled&) {
            cancelled.fetch_add(1);
          } catch (...) {
            // The scheduler must only surface the typed classes above.
            unexpected.fetch_add(1);
          }
        }
      });
    }
  }

  EXPECT_EQ(wrong_results.load(), 0)
      << "a job observed a result perturbed by a sibling";
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(faulted.load(), 0) << "the plan never landed a visible fault";
  EXPECT_GT(completed.load(), 0);

  const auto st = sched.stats();
  EXPECT_EQ(st.admitted, st.completed + st.failed);
  EXPECT_GE(st.concurrency_high_water, 2);
  EXPECT_LE(st.queue_high_water, 16u);
  EXPECT_EQ(engine->world().tag_space().outstanding(), 0);
  const int accounted = completed.load() + faulted.load() + stalled.load() +
                        deadlined.load() + cancelled.load();
  EXPECT_EQ(accounted, kThreads * per_thread);

  // The engine is still fully serviceable at full width after the storm:
  // a fault-free check job (the plan was uninstalled with the scope above)
  // is bitwise-equal — bits and trace — to the same job on a never-faulted
  // engine.
  const std::uint64_t kCheckSeed = 424242;
  std::vector<double> ref_bits;
  TraceSnapshot ref_trace;
  {
    auto ref_engine = std::make_shared<Engine>(8);
    Scheduler ref_sched(ref_engine);
    std::atomic<int> arr{0};
    std::atomic<int> res{0};
    ref_trace = ref_sched.run(8, [&](Process& p) {
      isolation_body(p, kCheckSeed, arr, 8, res, 1, &ref_bits, nullptr);
    });
  }
  std::vector<double> post_bits;
  std::atomic<int> arr{0};
  std::atomic<int> res{0};
  const auto post_trace = sched.run(8, [&](Process& p) {
    isolation_body(p, kCheckSeed, arr, 8, res, 1, &post_bits, nullptr);
  });
  ASSERT_FALSE(post_bits.empty());
  EXPECT_TRUE(bitwise_equal(post_bits, ref_bits))
      << "post-soak check job diverged from the clean reference";
  expect_trace_identical(post_trace, ref_trace, "post-soak check job");
  EXPECT_EQ(engine->world().tag_space().outstanding(), 0);
}

}  // namespace
