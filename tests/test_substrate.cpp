// Tests for the fast-path message substrate: per-source mailbox lanes
// (wildcard FIFO semantics, targeted wakeups, abort), shared-buffer
// zero-copy payloads, and the scalability properties of the rewritten
// collectives (no rank-0 bottleneck, O(1) payload copies per rank in
// broadcast). These pin exactly the semantics the lane/zero-copy design
// must preserve from the single-deque substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "mpl/mailbox.hpp"
#include "mpl/message.hpp"
#include "mpl/process.hpp"
#include "mpl/spmd.hpp"

namespace {

using namespace ppa::mpl;

Envelope make_env(int source, int tag, int value) {
  return Envelope{source, tag, pack_payload(std::span<const int>(&value, 1))};
}

int env_value(const Envelope& env) {
  return unpack<int>(env.payload).front();
}

// ----------------------------------------------------------------- payload --

TEST(Payload, SmallMessagesAreInline) {
  std::vector<char> small(Payload::kInlineBytes, 'a');
  const auto p = pack_payload(std::span<const char>(small));
  EXPECT_TRUE(p.inline_storage());
  EXPECT_EQ(p.size(), Payload::kInlineBytes);
  EXPECT_EQ(unpack<char>(p), small);
}

TEST(Payload, LargeMessagesAreHeapShared) {
  std::vector<char> big(Payload::kInlineBytes + 1, 'b');
  const auto p = pack_payload(std::span<const char>(big));
  EXPECT_FALSE(p.inline_storage());
  EXPECT_EQ(unpack<char>(p), big);
}

TEST(Payload, CopyingSharesTheHeapBuffer) {
  std::vector<double> big(1024, 3.5);
  const auto p = pack_payload(std::span<const double>(big));
  const Payload q = p;  // refcount bump, not a deep copy
  EXPECT_EQ(q.bytes().data(), p.bytes().data());
  EXPECT_EQ(unpack<double>(q), big);
}

TEST(Payload, AdoptTakesTheVectorBufferWithoutCopying) {
  std::vector<int> big(1024);
  std::iota(big.begin(), big.end(), 0);
  const int* raw = big.data();
  const auto p = Payload::adopt(std::move(big));
  EXPECT_EQ(reinterpret_cast<const int*>(p.bytes().data()), raw);
  EXPECT_EQ(payload_view<int>(p)[17], 17);
}

TEST(Payload, UnpackIntoAndView) {
  const std::vector<int> xs{1, 2, 3, 4, 5};
  const auto p = pack_payload(std::span<const int>(xs));
  std::vector<int> out(5, 0);
  EXPECT_EQ(unpack_into<int>(p, std::span<int>(out)), 5u);
  EXPECT_EQ(out, xs);
  const auto view = payload_view<int>(p);
  EXPECT_EQ(std::vector<int>(view.begin(), view.end()), xs);
}

// ----------------------------------------------------- wildcard FIFO order --

TEST(MailboxLanes, WildcardSourceReturnsGlobalArrivalOrder) {
  Mailbox box(4);
  box.push(make_env(2, 0, 10));
  box.push(make_env(0, 0, 11));
  box.push(make_env(2, 0, 12));
  box.push(make_env(1, 0, 13));
  EXPECT_EQ(env_value(box.pop(kAnySource, 0)), 10);
  EXPECT_EQ(env_value(box.pop(kAnySource, 0)), 11);
  EXPECT_EQ(env_value(box.pop(kAnySource, 0)), 12);
  EXPECT_EQ(env_value(box.pop(kAnySource, 0)), 13);
}

TEST(MailboxLanes, WildcardTagIsFifoWithinSource) {
  Mailbox box(2);
  box.push(make_env(0, 5, 1));
  box.push(make_env(0, 9, 2));
  box.push(make_env(0, 5, 3));
  EXPECT_EQ(env_value(box.pop(0, kAnyTag)), 1);
  EXPECT_EQ(env_value(box.pop(0, kAnyTag)), 2);
  EXPECT_EQ(env_value(box.pop(0, kAnyTag)), 3);
}

TEST(MailboxLanes, DoubleWildcardDrainsInArrivalOrder) {
  Mailbox box(3);
  box.push(make_env(1, 7, 1));
  box.push(make_env(0, 3, 2));
  box.push(make_env(2, 9, 3));
  EXPECT_EQ(env_value(box.pop(kAnySource, kAnyTag)), 1);
  EXPECT_EQ(env_value(box.pop(kAnySource, kAnyTag)), 2);
  EXPECT_EQ(env_value(box.pop(kAnySource, kAnyTag)), 3);
}

TEST(MailboxLanes, WildcardSkipsNonMatchingTagsButKeepsPerTagFifo) {
  Mailbox box(2);
  box.push(make_env(0, 1, 10));
  box.push(make_env(1, 2, 20));
  box.push(make_env(0, 2, 30));
  EXPECT_EQ(env_value(box.pop(kAnySource, 2)), 20);
  EXPECT_EQ(env_value(box.pop(kAnySource, 2)), 30);
  EXPECT_EQ(env_value(box.pop(kAnySource, 1)), 10);
}

TEST(MailboxLanes, TaggedMatchScansOnlyThatLane) {
  Mailbox box(2);
  // A deep backlog from source 0 must not slow or disturb a match on
  // source 1 (behavioral part: the source-1 message is found first try).
  for (int i = 0; i < 1000; ++i) box.push(make_env(0, 0, i));
  box.push(make_env(1, 0, 4242));
  EXPECT_EQ(env_value(box.pop(1, 0)), 4242);
  EXPECT_EQ(box.pending(), 1000u);
}

TEST(MailboxLanes, SourcesBeyondPresizedTableGrowOnDemand) {
  Mailbox box(2);
  box.push(make_env(9, 0, 99));  // beyond nsenders, within the minimum table
  EXPECT_EQ(env_value(box.pop(9, 0)), 99);
  box.push(make_env(500, 1, 77));  // far beyond the table: overflow map
  box.push(make_env(500, 1, 78));
  EXPECT_EQ(env_value(box.pop(500, 1)), 77);
  EXPECT_EQ(env_value(box.pop(kAnySource, kAnyTag)), 78);
}

TEST(MailboxLanes, BlockedWildcardReceiverSeesLateArrival) {
  Mailbox box(4);
  std::thread sender([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.push(make_env(3, 0, 7));
  });
  EXPECT_EQ(env_value(box.pop(kAnySource, 0)), 7);
  sender.join();
}

TEST(MailboxLanes, PushToOneLaneDoesNotWakeOtherLanes) {
  Mailbox box(8);
  constexpr int kIdle = 6;
  std::atomic<int> released{0};
  std::vector<std::thread> idlers;
  idlers.reserve(kIdle);
  for (int i = 0; i < kIdle; ++i) {
    idlers.emplace_back([&box, &released, i] {
      try {
        (void)box.pop(i + 2, 0);  // sources that never send
      } catch (const WorldAborted&) {
        released.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Stream messages to lane 0; idle receivers on lanes 2..7 must not wake.
  for (int i = 0; i < 500; ++i) box.push(make_env(0, 0, i));
  for (int i = 0; i < 500; ++i) EXPECT_EQ(env_value(box.pop(0, 0)), i);
  // The receiver in this thread popped as messages arrived; allow a small
  // number of wakeups that lost the race, but nothing like the 500 × 6
  // storm the single-deque design produced.
  EXPECT_LE(box.futile_wakeups(), 50u);
  box.abort();
  for (auto& t : idlers) t.join();
  EXPECT_EQ(released.load(), kIdle);
}

TEST(MailboxLanes, AbortReleasesTargetedAndWildcardWaiters) {
  Mailbox box(4);
  std::atomic<int> released{0};
  std::thread targeted([&box, &released] {
    try {
      (void)box.pop(1, 0);
    } catch (const WorldAborted&) {
      released.fetch_add(1);
    }
  });
  std::thread wildcard([&box, &released] {
    try {
      (void)box.pop(kAnySource, kAnyTag);
    } catch (const WorldAborted&) {
      released.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.abort();
  targeted.join();
  wildcard.join();
  EXPECT_EQ(released.load(), 2);
}

TEST(MailboxLanes, TryPopWildcardHonorsArrivalOrder) {
  Mailbox box(2);
  Envelope env;
  EXPECT_FALSE(box.try_pop(kAnySource, kAnyTag, env));
  box.push(make_env(1, 0, 1));
  box.push(make_env(0, 0, 2));
  EXPECT_TRUE(box.try_pop(kAnySource, kAnyTag, env));
  EXPECT_EQ(env_value(env), 1);
}

TEST(MailboxLanes, ManyProducerWildcardOrderUnderConcurrentLoad) {
  // Stress regression for the wildcard ordering race: while producers are
  // pushing concurrently, successive kAnySource receives must observe
  // strictly increasing arrival sequence numbers (a receive never returns a
  // later arrival while an earlier one is in flight), and interleaved
  // lane-targeted receives must still see per-source FIFO. The fix this
  // pins: push stamps the arrival seq inside the lane critical section and
  // the wildcard search rescans until stable; previously a stamped-but-not-
  // yet-queued message could be overtaken by a later arrival.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1500;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    Mailbox box(kProducers);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int s = 0; s < kProducers; ++s) {
      producers.emplace_back([&box, s] {
        for (int i = 0; i < kPerProducer; ++i) box.push(make_env(s, 0, i));
      });
    }
    std::uint64_t last_seq = 0;
    bool first = true;
    int next_from_zero = 0;  // targeted receives from source 0: FIFO check
    int received = 0;
    const int total = kProducers * kPerProducer;
    while (received < total) {
      // Interleave a lane-targeted receive among the wildcard receives.
      if (received % 16 == 7 && next_from_zero < kPerProducer) {
        EXPECT_EQ(env_value(box.pop(0, 0)), next_from_zero++);
        ++received;
        continue;
      }
      const Envelope env = box.pop(kAnySource, 0);
      if (env.source == 0) {
        EXPECT_EQ(env_value(env), next_from_zero++);
      }
      if (!first) {
        EXPECT_GT(env.seq, last_seq)
            << "wildcard receive returned an earlier arrival after a later one";
      }
      last_seq = env.seq;
      first = false;
      ++received;
    }
    for (auto& t : producers) t.join();
    EXPECT_EQ(box.pending(), 0u);
  }
}

TEST(MailboxLanes, ConcurrentSendersPreserveEachSourcesFifo) {
  constexpr int kSenders = 4;
  constexpr int kMsgs = 2000;
  Mailbox box(kSenders);
  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&box, s] {
      for (int i = 0; i < kMsgs; ++i) box.push(make_env(s, 0, i));
    });
  }
  for (auto& t : senders) t.join();
  for (int s = 0; s < kSenders; ++s) {
    for (int i = 0; i < kMsgs; ++i) {
      EXPECT_EQ(env_value(box.pop(s, 0)), i);
    }
  }
}

// -------------------------------------------------------- spmd-level paths --

TEST(SpmdSubstrate, RecvIntoFillsCallerBuffer) {
  spmd_run(2, [](Process& p) {
    if (p.rank() == 0) {
      std::vector<int> data(256);
      std::iota(data.begin(), data.end(), 0);
      p.send(1, 0, data);
    } else {
      std::vector<int> out(256, -1);
      EXPECT_EQ(p.recv_into(0, 0, std::span<int>(out)), 256u);
      EXPECT_EQ(out[255], 255);
    }
  });
}

TEST(SpmdSubstrate, RecvBorrowExposesPayloadWithoutCopy) {
  spmd_run(2, [](Process& p) {
    if (p.rank() == 0) {
      std::vector<double> data(512, 2.5);
      p.send(1, 0, std::move(data));
    } else {
      const auto msg = p.recv_borrow<double>(0, 0);
      EXPECT_EQ(msg.source(), 0);
      EXPECT_EQ(msg.view().size(), 512u);
      EXPECT_DOUBLE_EQ(msg.view()[100], 2.5);
    }
  });
}

TEST(SpmdSubstrate, MoveSendPreservesIsolation) {
  // Adopted buffers are immutable shared payloads; the receiver's copy must
  // be independent of anything the sender does afterwards.
  spmd_run(2, [](Process& p) {
    if (p.rank() == 0) {
      std::vector<int> buf{1, 2, 3};
      p.send(1, 0, std::move(buf));
      buf.assign(3, 999);  // moved-from then reused: must not affect receiver
      p.barrier();
    } else {
      p.barrier();
      EXPECT_EQ(p.recv<int>(0, 0), (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(SpmdSubstrate, BroadcastPerformsO1PayloadCopiesPerRank) {
  constexpr int kP = 8;
  constexpr std::size_t kBytes = 1u << 20;
  TraceSnapshot trace;
  spmd_collect<int>(
      kP,
      [](Process& p) {
        std::vector<double> data(p.rank() == 0 ? kBytes / sizeof(double) : 0, 1.5);
        p.broadcast(data, 0);
        EXPECT_EQ(data.size(), kBytes / sizeof(double));
        return 0;
      },
      &trace);
  // One pack at the root + one unpack per non-root = p payload copies.
  // The pre-zero-copy substrate re-packed at every binomial tree level
  // (2 · (p-1) payload copies ≈ 14 here). Allow headroom for the tiny
  // bookkeeping copies but pin the O(1)-per-rank property.
  EXPECT_LE(trace.copied_bytes, static_cast<std::uint64_t>(kBytes) * (kP + 1));
  // Logical traffic is unchanged: p-1 messages of kBytes each.
  EXPECT_EQ(trace.messages, static_cast<std::uint64_t>(kP - 1));
  EXPECT_EQ(trace.bytes, static_cast<std::uint64_t>(kBytes) * (kP - 1));
}

TEST(SpmdSubstrate, AllgatherHasNoRootSendBottleneck) {
  constexpr int kP = 8;
  constexpr std::size_t kN = 1u << 15;  // 256 KiB of doubles per rank
  TraceSnapshot trace;
  spmd_collect<int>(
      kP,
      [](Process& p) {
        const std::vector<double> mine(kN, p.rank());
        const auto all = p.allgather(std::span<const double>(mine));
        EXPECT_EQ(all.size(), kN * kP);
        return 0;
      },
      &trace);
  // With gather-to-root + two broadcasts, rank 0 pushed the whole p·n
  // result to each of its log2(p) binomial children — ~log2(p)·p·n bytes
  // (24 blocks here) from one sender. Recursive doubling balances the
  // volume: every rank sends exactly p-1 blocks (7 here, plus 16-byte
  // record headers). Pin the balanced bound.
  const std::uint64_t block = kN * sizeof(double);
  EXPECT_GT(trace.max_sent_by_any_rank(), 0u);
  EXPECT_LE(trace.max_sent_by_any_rank(), block * (kP - 1) + 4096);
}

TEST(SpmdSubstrate, AllreduceVecHasBalancedSendersAtScale) {
  constexpr int kP = 8;
  constexpr std::size_t kN = 1u << 15;
  TraceSnapshot trace;
  spmd_collect<int>(
      kP,
      [](Process& p) {
        const std::vector<double> mine(kN, 1.0);
        const auto sum = p.allreduce_vec(std::span<const double>(mine), SumOp{});
        EXPECT_DOUBLE_EQ(sum[kN / 2], static_cast<double>(kP));
        return 0;
      },
      &trace);
  // Ring reduce-scatter + allgather: every rank sends exactly
  // 2·(p-1)·(n/p) elements. The old root reduction had rank 0 receive
  // (p-1)·n and send ~n·(p-1) via broadcast re-packs.
  const std::uint64_t total = trace.bytes;
  const std::uint64_t max_rank = trace.max_sent_by_any_rank();
  EXPECT_LT(max_rank, total / (kP / 2));  // no rank dominates
}

TEST(SpmdSubstrate, AllreduceVecRingMatchesSmallVectorPath) {
  // Same data through both code paths (size above / below the ring
  // threshold) must give identical sums for exactly-representable values.
  for (const int p : {3, 4, 7, 8}) {
    const std::size_t big = 4096, small = 16;
    auto run = [p](std::size_t n) {
      return spmd_collect<std::vector<double>>(p, [n](Process& proc) {
        std::vector<double> mine(n);
        for (std::size_t i = 0; i < n; ++i) {
          mine[i] = static_cast<double>((proc.rank() + 1) * (i % 13));
        }
        return proc.allreduce_vec(std::span<const double>(mine), SumOp{});
      });
    };
    const auto big_results = run(big);
    const auto small_results = run(small);
    const double scale = p * (p + 1) / 2.0;
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < small; ++i) {
        EXPECT_DOUBLE_EQ(small_results[static_cast<std::size_t>(r)][i],
                         scale * static_cast<double>(i % 13));
      }
      for (std::size_t i = 0; i < big; i += 97) {
        EXPECT_DOUBLE_EQ(big_results[static_cast<std::size_t>(r)][i],
                         scale * static_cast<double>(i % 13));
      }
    }
  }
}

TEST(SpmdSubstrate, ReductionOrderIsDeterministicAcrossRuns) {
  // Floating-point sums are association-sensitive; identical results across
  // runs (bitwise, per rank) pin the deterministic combination order of
  // both the ring path (large vectors) and the binomial+broadcast path
  // (scalars) for power-of-two and non-power-of-two world sizes.
  for (const int p : {5, 8}) {
    auto run = [p] {
      return spmd_collect<std::vector<double>>(p, [](Process& proc) {
        std::vector<double> mine(3000);
        for (std::size_t i = 0; i < mine.size(); ++i) {
          mine[i] = 1.0 / static_cast<double>(1 + proc.rank() + i);
        }
        auto vec = proc.allreduce_vec(std::span<const double>(mine), SumOp{});
        vec.push_back(proc.allreduce(mine[0], SumOp{}));
        vec.push_back(proc.reduce(mine[1], SumOp{}, 0));
        return vec;
      });
    };
    const auto first = run();
    const auto second = run();
    EXPECT_EQ(first, second) << "world size " << p;
  }
}

TEST(SpmdSubstrate, WildcardReceiveFifoUnderSpmd) {
  // Per-(source,tag) FIFO must survive wildcard receives: messages from the
  // same source must be seen in send order even via kAnySource.
  static constexpr int kP = 4;
  static constexpr int kMsgs = 50;
  spmd_run(kP, [](Process& p) {
    if (p.rank() == 0) {
      std::vector<int> next_expected(kP, 0);
      for (int i = 0; i < (kP - 1) * kMsgs; ++i) {
        auto [src, data] = p.recv_any<int>(kAnySource, 3);
        ASSERT_EQ(data.size(), 1u);
        EXPECT_EQ(data.front(), next_expected[static_cast<std::size_t>(src)]++);
      }
      for (int s = 1; s < kP; ++s) {
        EXPECT_EQ(next_expected[static_cast<std::size_t>(s)], kMsgs);
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) p.send_value(0, 3, i);
    }
  });
}

TEST(SpmdSubstrate, AbortPropagatesOutOfCollectives) {
  EXPECT_THROW(spmd_run(6,
                        [](Process& p) {
                          if (p.rank() == 3) throw std::runtime_error("kaboom");
                          // Other ranks block in a collective that can never
                          // complete; they must be released, not deadlock.
                          std::vector<double> v(1024, 1.0);
                          (void)p.allreduce_vec(std::span<const double>(v), SumOp{});
                          p.barrier();
                        }),
               std::runtime_error);
}

}  // namespace
