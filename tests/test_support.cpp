// Unit tests for ppa_support: arrays, partitioning, RNG, statistics,
// plotting, and image output.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "support/ascii_plot.hpp"
#include "support/image.hpp"
#include "support/ndarray.hpp"
#include "support/partition.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using ppa::Array2D;
using ppa::Array3D;
using ppa::block_owner;
using ppa::block_range;
using ppa::Rng;

// ---------------------------------------------------------------- Array2D --

TEST(Array2D, DefaultIsEmpty) {
  Array2D<int> a;
  EXPECT_EQ(a.rows(), 0u);
  EXPECT_EQ(a.cols(), 0u);
  EXPECT_TRUE(a.empty());
}

TEST(Array2D, ConstructFillsWithInit) {
  Array2D<int> a(3, 4, 7);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 4u);
  EXPECT_EQ(a.size(), 12u);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_EQ(a(i, j), 7);
}

TEST(Array2D, RowMajorLayout) {
  Array2D<int> a(2, 3);
  int v = 0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  // Flat storage must be 0,1,2,3,4,5.
  const auto flat = a.flat();
  for (int k = 0; k < 6; ++k) EXPECT_EQ(flat[static_cast<std::size_t>(k)], k);
}

TEST(Array2D, RowSpanIsContiguousView) {
  Array2D<double> a(4, 5, 0.0);
  auto r2 = a.row(2);
  ASSERT_EQ(r2.size(), 5u);
  r2[3] = 42.0;
  EXPECT_EQ(a(2, 3), 42.0);
}

TEST(Array2D, AtThrowsOutOfRange) {
  Array2D<int> a(2, 2);
  EXPECT_THROW(a.at(2, 0), std::out_of_range);
  EXPECT_THROW(a.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(a.at(1, 1));
}

TEST(Array2D, EqualityComparesShapeAndData) {
  Array2D<int> a(2, 2, 1), b(2, 2, 1), c(2, 2, 2), d(4, 1, 1);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(Array2D, FillOverwrites) {
  Array2D<int> a(2, 2, 1);
  a.fill(9);
  for (int x : a.flat()) EXPECT_EQ(x, 9);
}

TEST(Array2D, TransposeSwapsAxes) {
  Array2D<int> a(2, 3);
  int v = 0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  const auto t = ppa::transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(t(j, i), a(i, j));
  // Double transpose is the identity.
  EXPECT_EQ(ppa::transpose(t), a);
}

// ---------------------------------------------------------------- Array3D --

TEST(Array3D, IndexingAndLayout) {
  Array3D<int> a(2, 3, 4);
  int v = 0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      for (std::size_t k = 0; k < 4; ++k) a(i, j, k) = v++;
  const auto flat = a.flat();
  for (int k = 0; k < 24; ++k) EXPECT_EQ(flat[static_cast<std::size_t>(k)], k);
  EXPECT_EQ(a.at(1, 2, 3), 23);
  EXPECT_THROW(a.at(2, 0, 0), std::out_of_range);
}

// ----------------------------------------------------------- block_range --

TEST(BlockRange, CoversWithoutOverlap) {
  for (std::size_t n : {0u, 1u, 5u, 16u, 17u, 100u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t covered = 0;
      std::size_t prev_hi = 0;
      for (std::size_t p = 0; p < parts; ++p) {
        const auto r = block_range(n, parts, p);
        EXPECT_EQ(r.lo, prev_hi) << "blocks must be contiguous";
        prev_hi = r.hi;
        covered += r.size();
      }
      EXPECT_EQ(prev_hi, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(BlockRange, BalancedWithinOne) {
  const std::size_t n = 103, parts = 7;
  std::size_t lo = n, hi = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const auto r = block_range(n, parts, p);
    lo = std::min(lo, r.size());
    hi = std::max(hi, r.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(BlockRange, OwnerIsInverse) {
  for (std::size_t n : {1u, 13u, 64u, 101u}) {
    for (std::size_t parts : {1u, 2u, 5u, 8u, 32u}) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t owner = block_owner(n, parts, i);
        ASSERT_LT(owner, parts);
        EXPECT_TRUE(block_range(n, parts, owner).contains(i))
            << "n=" << n << " parts=" << parts << " i=" << i;
      }
    }
  }
}

TEST(BlockRange, MorePartsThanElements) {
  // Trailing blocks must be empty, leading blocks hold one element each.
  const std::size_t n = 3, parts = 8;
  for (std::size_t p = 0; p < parts; ++p) {
    const auto r = block_range(n, parts, p);
    EXPECT_EQ(r.size(), p < n ? 1u : 0u);
  }
}

TEST(BlockRange, OwnerRoundTripWithFewerElementsThanParts) {
  // n < parts: block_owner must send every index to the (singleton) block
  // that block_range says holds it, for every such shape — including the
  // n == parts - 1 edge where exactly one trailing block is empty.
  for (std::size_t parts : {2u, 3u, 5u, 8u, 16u, 31u}) {
    for (std::size_t n = 1; n < parts; ++n) {
      std::size_t covered = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t owner = block_owner(n, parts, i);
        ASSERT_LT(owner, parts) << "n=" << n << " parts=" << parts;
        const auto r = block_range(n, parts, owner);
        EXPECT_TRUE(r.contains(i)) << "n=" << n << " parts=" << parts
                                   << " i=" << i << " owner=" << owner;
        EXPECT_EQ(r.size(), 1u);
        ++covered;
      }
      EXPECT_EQ(covered, n);
      // And the empty trailing blocks really are empty.
      for (std::size_t p = n; p < parts; ++p) {
        EXPECT_EQ(block_range(n, parts, p).size(), 0u);
      }
    }
  }
}

TEST(BlockRange, ZeroElements) {
  // n == 0 (the fully empty problem reaching the partition arithmetic via
  // onedeep::block_distribute of an empty input): every block is the empty
  // range [0, 0) — no assert, no wraparound.
  for (std::size_t parts : {1u, 2u, 7u}) {
    for (std::size_t p = 0; p < parts; ++p) {
      const auto r = block_range(0, parts, p);
      EXPECT_EQ(r.lo, 0u);
      EXPECT_EQ(r.hi, 0u);
      EXPECT_EQ(r.size(), 0u);
      EXPECT_FALSE(r.contains(0));
    }
  }
}

// -------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversEndpoints) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(42);
  const int n = 20000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, HelpersDeterministic) {
  const auto a = ppa::random_ints(50, -10, 10, 99);
  const auto b = ppa::random_ints(50, -10, 10, 99);
  EXPECT_EQ(a, b);
  for (int v : a) {
    EXPECT_GE(v, -10);
    EXPECT_LE(v, 10);
  }
}

// ------------------------------------------------------------------ stats --

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto s = ppa::summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EvenCountMedianAveragesMiddle) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(ppa::summarize(xs).median, 2.5);
}

TEST(Stats, EmptySampleIsZeros) {
  const auto s = ppa::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, TimerMeasuresElapsed) {
  ppa::Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
}

// ------------------------------------------------------------- ascii plot --

TEST(AsciiPlot, RenderContainsGlyphsAndLegend) {
  ppa::plot::Axes axes;
  axes.title = "test plot";
  axes.xlabel = "x";
  axes.ylabel = "y";
  ppa::plot::Series s{"line", '*', {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}}};
  const auto text = ppa::plot::render(axes, {s});
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find("line"), std::string::npos);
  EXPECT_NE(text.find("test plot"), std::string::npos);
}

TEST(AsciiPlot, SpeedupPlotHasPerfectDiagonal) {
  ppa::plot::Series s{"actual", 'o', {{1.0, 1.0}, {16.0, 12.0}}};
  const auto text = ppa::plot::render_speedup("speedups", {s}, 16.0, 16.0);
  EXPECT_NE(text.find("perfect speedup"), std::string::npos);
  EXPECT_NE(text.find('o'), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesDoesNotCrash) {
  ppa::plot::Axes axes;
  const auto text = ppa::plot::render(axes, {});
  EXPECT_FALSE(text.empty());
}

// ------------------------------------------------------------------ image --

TEST(Image, ColormapEndpoints) {
  const auto lo = ppa::img::colormap_jet(0.0);
  const auto hi = ppa::img::colormap_jet(1.0);
  EXPECT_GT(lo.b, lo.r);  // cold end is blue
  EXPECT_GT(hi.r, hi.b);  // hot end is red
  const auto g = ppa::img::colormap_gray(0.5);
  EXPECT_EQ(g.r, g.g);
  EXPECT_EQ(g.g, g.b);
}

TEST(Image, WritePpmProducesValidHeaderAndSize) {
  Array2D<double> f(4, 6, 0.0);
  f(1, 2) = 1.0;
  const std::string path = testing::TempDir() + "/ppa_test.ppm";
  ppa::img::write_ppm(path, f);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxv, 255);
  in.get();  // single whitespace after header
  std::vector<char> pixels(static_cast<std::size_t>(w) * h * 3);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(pixels.size()));
  std::remove(path.c_str());
}

TEST(Image, WritePgmGrayscale) {
  Array2D<double> f(2, 2, 0.5);
  const std::string path = testing::TempDir() + "/ppa_test.pgm";
  ppa::img::write_pgm(path, f, 0.0, 1.0);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
}

TEST(Image, AsciiFieldShape) {
  Array2D<double> f(16, 32, 0.0);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 32; ++j) f(i, j) = static_cast<double>(i + j);
  const auto art = ppa::img::ascii_field(f, 32);
  EXPECT_FALSE(art.empty());
  // Top-left should be the "cold" ramp char, bottom-right the "hot" one.
  EXPECT_EQ(art.front(), ' ');
  const auto last_line_start = art.rfind('\n', art.size() - 2);
  EXPECT_EQ(art[art.size() - 2], '@');
  (void)last_line_start;
}

}  // namespace
