// Tests for the work-stealing task runtime (core/task.hpp): ThreadPool /
// TaskGroup fork-join semantics, stealing, exception propagation, nesting
// with parfor and divide_and_conquer, and the pooled branch-and-bound and
// algorithm drivers' determinism contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algorithms/closest_pair.hpp"
#include "algorithms/hull.hpp"
#include "algorithms/skyline.hpp"
#include "apps/sort/traditional_mergesort.hpp"
#include "core/core.hpp"
#include "support/rng.hpp"

namespace {

using namespace ppa;

// ------------------------------------------------------------- TaskGroup --

TEST(TaskGroup, AllTasksRunExactlyOnce) {
  task::ThreadPool pool(4);
  constexpr std::size_t kTasks = 2000;
  std::vector<std::atomic<int>> hits(kTasks);
  task::TaskGroup group(pool);
  for (std::size_t i = 0; i < kTasks; ++i) {
    group.run([&hits, i] { hits[i].fetch_add(1); });
  }
  group.wait();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskGroup, WaitIsReusable) {
  task::ThreadPool pool(2);
  task::TaskGroup group(pool);
  std::atomic<int> count{0};
  group.run([&] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 1);
  group.run([&] { ++count; });
  group.run([&] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(TaskGroup, FirstExceptionRethrownAtWait) {
  task::ThreadPool pool(4);
  task::TaskGroup group(pool);
  std::atomic<int> completed{0};
  for (int i = 0; i < 16; ++i) {
    group.run([&completed, i] {
      if (i == 7) throw std::runtime_error("task 7 failed");
      ++completed;
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The group is intact after the throw: remaining tasks all ran.
  EXPECT_EQ(completed.load(), 15);
  // And reusable: a clean batch joins cleanly.
  group.run([&completed] { ++completed; });
  EXPECT_NO_THROW(group.wait());
  EXPECT_EQ(completed.load(), 16);
}

TEST(TaskGroup, NestedGroupsJoinWithoutDeadlock) {
  // A one-worker pool is the adversarial case: the forked task's nested
  // group can only finish because joiners help execute queued tasks.
  task::ThreadPool pool(1);
  std::atomic<int> leaves{0};
  task::TaskGroup outer(pool);
  for (int i = 0; i < 4; ++i) {
    outer.run([&pool, &leaves] {
      task::TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) inner.run([&leaves] { ++leaves; });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(leaves.load(), 32);
}

TEST(TaskGroup, StealingMovesWorkAcrossWorkers) {
  task::ThreadPool pool(4);
  const std::uint64_t steals_before = pool.steals();
  // One task forks many slow subtasks: they land on that worker's deque,
  // and the other three workers can only get them by stealing. The main
  // thread deliberately does NOT join (help) until the forking task is
  // done, so the forker is guaranteed to be a pool worker with a deque.
  std::atomic<bool> done{false};
  task::TaskGroup group(pool);
  group.run([&pool, &done] {
    task::TaskGroup inner(pool);
    for (int i = 0; i < 64; ++i) {
      inner.run([] { std::this_thread::sleep_for(std::chrono::microseconds(200)); });
    }
    inner.wait();
    done.store(true);
  });
  while (!done.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  group.wait();
  EXPECT_GT(pool.steals(), steals_before);
}

TEST(TaskGroup, ExternalSubmitterUsesInjector) {
  // Submissions from a non-worker thread (this one) must still run.
  task::ThreadPool pool(2);
  std::atomic<int> ran{0};
  task::TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) group.run([&ran] { ++ran; });
  group.wait();
  EXPECT_EQ(ran.load(), 100);
}

// ---------------------------------------------------- parfor on the pool --

TEST(ParforPool, ThrowingBodyRethrowsAfterJoin) {
  // Regression: the seed's jthread-based parfor called std::terminate when
  // a worker body threw. The pool-backed parfor must complete the join and
  // rethrow, matching sequential semantics.
  EXPECT_THROW(
      parfor(1000, par(4),
             [](std::size_t i) {
               if (i == 637) throw std::runtime_error("body failed");
             }),
      std::runtime_error);
}

TEST(ParforPool, ThrowingBodyInEveryChunkStillOneException) {
  std::atomic<int> attempts{0};
  try {
    parfor(64, par(8), [&attempts](std::size_t) {
      ++attempts;
      throw std::logic_error("all bodies fail");
    });
    FAIL() << "parfor must rethrow";
  } catch (const std::logic_error&) {
  }
  EXPECT_GT(attempts.load(), 0);
}

TEST(ParforPool, SequentialThrowIsUnchanged) {
  EXPECT_THROW(
      parfor(10, seq,
             [](std::size_t i) {
               if (i == 3) throw std::runtime_error("seq");
             }),
      std::runtime_error);
}

TEST(ParforPool, NestedInsideTaskGroup) {
  // parfor called from inside a pool task (the satellite's nested case):
  // the inner join helps rather than blocking the only worker.
  task::ThreadPool& pool = task::ThreadPool::instance();
  constexpr std::size_t kOuter = 4, kInner = 257;
  std::vector<std::vector<double>> out(kOuter, std::vector<double>(kInner, 0.0));
  task::TaskGroup group(pool);
  for (std::size_t o = 0; o < kOuter; ++o) {
    group.run([&out, o] {
      parfor(kInner, par(4), [&out, o](std::size_t i) {
        out[o][i] = static_cast<double>(o * 1000 + i) * 1.5;
      });
    });
  }
  group.wait();
  for (std::size_t o = 0; o < kOuter; ++o) {
    for (std::size_t i = 0; i < kInner; ++i) {
      EXPECT_EQ(out[o][i], static_cast<double>(o * 1000 + i) * 1.5);
    }
  }
}

TEST(ParforPool, NestedParforInsideParfor) {
  std::vector<std::atomic<int>> counts(64);
  parfor(8, par(4), [&counts](std::size_t o) {
    parfor(8, par(4), [&counts, o](std::size_t i) {
      counts[o * 8 + i].fetch_add(1);
    });
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

// ------------------------------------------- divide and conquer, on-pool --

long pool_dc_sum(std::vector<long> xs, int depth) {
  using Problem = std::vector<long>;
  return dc::divide_and_conquer<Problem, long>(
      std::move(xs),
      [](const Problem& p) { return p.size() <= 2; },
      [](Problem p) { return std::accumulate(p.begin(), p.end(), 0L); },
      [](Problem p) {
        const auto mid = static_cast<std::ptrdiff_t>(p.size() / 2);
        Problem left(p.begin(), p.begin() + mid);
        Problem right(p.begin() + mid, p.end());
        std::vector<Problem> subs;
        subs.push_back(std::move(left));
        subs.push_back(std::move(right));
        return subs;
      },
      [](std::vector<long> sols) { return sols[0] + sols[1]; }, depth);
}

TEST(TaskDC, DeepRecursionMatchesSequentialBitwise) {
  // The satellite's deep-recursion case: fork at every level of a recursion
  // much deeper than the pool is wide; results must equal parallel_depth=0.
  std::vector<long> xs(20000);
  std::iota(xs.begin(), xs.end(), -7000);
  const long sequential = pool_dc_sum(xs, 0);
  EXPECT_EQ(pool_dc_sum(xs, 16), sequential);
  EXPECT_EQ(pool_dc_sum(xs, 30), sequential);
}

TEST(TaskDC, AsyncLegacyDriverMatchesAndHonorsCap) {
  std::vector<long> xs(5000);
  std::iota(xs.begin(), xs.end(), 1);
  using Problem = std::vector<long>;
  // Deep k-way recursion on the legacy driver: without the live-fork cap
  // this forked 4^6 threads; with it the fork count stays bounded and the
  // result is unchanged.
  const auto result = dc::divide_and_conquer_async<Problem, long>(
      Problem(xs),
      [](const Problem& p) { return p.size() <= 4; },
      [](Problem p) { return std::accumulate(p.begin(), p.end(), 0L); },
      [](Problem p) {
        std::vector<Problem> subs;
        const std::size_t quarter = p.size() / 4;
        for (int q = 0; q < 4; ++q) {
          const std::size_t lo = quarter * static_cast<std::size_t>(q);
          const std::size_t hi = (q == 3) ? p.size() : lo + quarter;
          subs.emplace_back(p.begin() + static_cast<std::ptrdiff_t>(lo),
                            p.begin() + static_cast<std::ptrdiff_t>(hi));
        }
        return subs;
      },
      [](std::vector<long> sols) {
        return std::accumulate(sols.begin(), sols.end(), 0L);
      },
      6);
  EXPECT_EQ(result, 5000L * 5001L / 2);
  // Every claimed fork slot was released.
  EXPECT_EQ(dc::detail::live_async_forks().load(), 0);
}

TEST(TaskDC, MergesortPoolEqualsAsyncEqualsStdSort) {
  const auto data = random_ints(30000, -1000000, 1000000, 99);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(app::traditional_mergesort(data, 8), expected);
  EXPECT_EQ(app::traditional_mergesort_async(data, 8), expected);
}

// ----------------------------------------- ported algorithm task drivers --

TEST(TaskAlgorithms, SkylineTaskIdenticalToSequential) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    std::vector<algo::Building> bs;
    for (int i = 0; i < 500; ++i) {
      const double left = rng.uniform(0.0, 1000.0);
      bs.push_back({left, left + rng.uniform(0.5, 80.0), rng.uniform(1.0, 50.0)});
    }
    const auto sequential =
        algo::skyline_divide_and_conquer(std::span<const algo::Building>(bs));
    EXPECT_EQ(algo::skyline_task(std::span<const algo::Building>(bs)), sequential);
    EXPECT_EQ(algo::skyline_task(std::span<const algo::Building>(bs), 9),
              sequential);
  }
}

TEST(TaskAlgorithms, ClosestPairTaskIdenticalToSequential) {
  for (std::uint64_t seed : {5u, 6u}) {
    Rng rng(seed);
    std::vector<algo::Point2> pts;
    for (int i = 0; i < 4000; ++i) {
      pts.push_back({rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)});
    }
    const auto sequential = algo::closest_pair(std::span<const algo::Point2>(pts));
    const auto pooled = algo::closest_pair_task(std::span<const algo::Point2>(pts));
    EXPECT_EQ(pooled.distance, sequential.distance);
    EXPECT_EQ(pooled.a, sequential.a);
    EXPECT_EQ(pooled.b, sequential.b);
  }
}

TEST(TaskAlgorithms, ConvexHullTaskIdenticalToSequential) {
  for (std::uint64_t seed : {7u, 8u}) {
    Rng rng(seed);
    std::vector<algo::Point2> pts;
    for (int i = 0; i < 3000; ++i) {
      pts.push_back({rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)});
    }
    // Adversarial extras: duplicates and collinear runs.
    for (int i = 0; i < 100; ++i) pts.push_back({0.0, static_cast<double>(i % 7)});
    for (int i = 0; i < 100; ++i) pts.push_back(pts[static_cast<std::size_t>(i)]);
    EXPECT_EQ(algo::convex_hull_task(pts), algo::convex_hull(pts));
    EXPECT_EQ(algo::convex_hull_task(pts, 13), algo::convex_hull(pts));
  }
}

TEST(TaskAlgorithms, ConvexHullTaskTinyInputs) {
  std::vector<algo::Point2> pts{{0, 0}, {1, 1}, {2, 0}};
  EXPECT_EQ(algo::convex_hull_task(pts), algo::convex_hull(pts));
  pts.resize(1);
  EXPECT_EQ(algo::convex_hull_task(pts), algo::convex_hull(pts));
}

}  // namespace
